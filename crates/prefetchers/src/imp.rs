//! IMP — the Indirect Memory Prefetcher (Yu et al., MICRO 2015).
//!
//! IMP couples a stream detector with an Indirect Pattern Detector: when a
//! PC streams sequentially through an index array `B`, IMP correlates the
//! *values* loaded from `B` with subsequent miss addresses `M`, solving
//! `M = base + (value << shift)` from two confirming observations. Once a
//! coefficient is learned it prefetches `B[i+Δ]` and, on that fill, computes
//! and prefetches `A[B[i+Δ]]`.
//!
//! Limitations the paper exploits in comparison (§VI-C): only `A[B[i]]`
//! single-valued patterns (no ranged indirection, so CSR edge ranges are
//! missed) and at most two levels of indirection.

use prodigy_sim::fxhash::FxBuildHasher;
use prodigy_sim::line_of;
use prodigy_sim::prefetch::{DemandAccess, FillEvent, PrefetchCtx, Prefetcher};
use prodigy_sim::ServedBy;
use std::any::Any;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    pc: u32,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    shift: u8,
    base: u64,
    hits: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Learned {
    shift: u8,
    base: u64,
}

/// Computes `base + (v << shift)`, rejecting targets that overflow or land
/// outside a plausible 47-bit address space (loaded "index" values may be
/// arbitrary data, e.g. floating-point bit patterns).
fn indirect_target(base: u64, v: u64, shift: u8) -> Option<u64> {
    let scaled = v.checked_shl(shift as u32)?;
    let t = base.checked_add(scaled)?;
    (t < 1 << 47).then_some(t)
}

/// The IMP prefetcher.
#[derive(Debug)]
pub struct ImpPrefetcher {
    streams: Vec<StreamEntry>,
    candidates: HashMap<u32, Vec<Candidate>, FxBuildHasher>,
    learned: HashMap<u32, Learned, FxBuildHasher>,
    recent_values: Vec<(u32, u64)>,
    // Fx-hashed not just for speed: the capacity bound evicts
    // `pending.keys().next()`, and with std's randomized hasher that choice
    // differed run to run. A fixed hasher makes it arbitrary but repeatable.
    pending: HashMap<u64, Vec<(u32, u64, u8)>, FxBuildHasher>,
    distance: u64,
}

impl Default for ImpPrefetcher {
    fn default() -> Self {
        Self::new(16)
    }
}

impl ImpPrefetcher {
    /// Creates an IMP instance prefetching `distance` index elements ahead.
    pub fn new(distance: u64) -> Self {
        ImpPrefetcher {
            streams: vec![StreamEntry::default(); 64],
            candidates: HashMap::default(),
            learned: HashMap::default(),
            recent_values: Vec::new(),
            pending: HashMap::default(),
            distance,
        }
    }

    fn stream_update(&mut self, pc: u32, addr: u64) -> Option<i64> {
        let idx = (pc as usize) & (self.streams.len() - 1);
        let e = &mut self.streams[idx];
        if !e.valid || e.pc != pc {
            *e = StreamEntry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return None;
        }
        let delta = addr as i64 - e.last_addr as i64;
        e.last_addr = addr;
        if delta == 0 {
            return None;
        }
        if delta == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = delta;
            e.confidence = 0;
        }
        // A "stream" for IMP is a short-stride sequential walk.
        if e.confidence >= 2 && e.stride.unsigned_abs() <= 16 {
            Some(e.stride)
        } else {
            None
        }
    }

    /// Returns the base of a newly learned (or re-learned) coefficient so
    /// the caller can report the detection.
    fn learn_from_miss(&mut self, miss_addr: u64) -> Option<u64> {
        let mut newly_learned = None;
        for &(spc, v) in &self.recent_values {
            if v >= 1 << 40 {
                continue; // not an index (e.g. raw floating-point bits)
            }
            for shift in 0u8..=3 {
                let scaled = v << shift;
                let Some(base) = miss_addr.checked_sub(scaled) else {
                    continue;
                };
                let cands = self.candidates.entry(spc).or_default();
                if let Some(c) = cands
                    .iter_mut()
                    .find(|c| c.shift == shift && c.base == base)
                {
                    c.hits = c.hits.saturating_add(1);
                    if c.hits >= 2 {
                        let fresh = self.learned.insert(spc, Learned { shift, base });
                        if fresh != Some(Learned { shift, base }) {
                            newly_learned = Some(base);
                        }
                    }
                } else if cands.len() < 16 {
                    cands.push(Candidate {
                        shift,
                        base,
                        hits: 1,
                    });
                }
            }
        }
        newly_learned
    }
}

impl Prefetcher for ImpPrefetcher {
    fn name(&self) -> &'static str {
        "imp"
    }

    fn on_demand(&mut self, ctx: &mut PrefetchCtx<'_>, a: &DemandAccess) {
        if a.is_write {
            return;
        }
        let stream_stride = self.stream_update(a.pc, a.vaddr);
        if let Some(stride) = stream_stride {
            // Record the loaded index value for the pattern detector.
            let v = ctx.read_uint(a.vaddr, a.size.min(8));
            self.recent_values.push((a.pc, v));
            if self.recent_values.len() > 4 {
                self.recent_values.remove(0);
            }
            // Prefetch the index stream itself and, if a coefficient is
            // known, arrange the indirect target on the index fill.
            let ahead = a.vaddr as i64 + stride * self.distance as i64;
            if ahead > 0 {
                let ahead = ahead as u64;
                // Tag 0 = index-stream prefetch, 1 = learned indirection.
                ctx.prefetch_tagged(ahead, 0);
                if self.learned.contains_key(&a.pc) {
                    let entry = self.pending.entry(line_of(ahead)).or_default();
                    if entry.len() < 16 {
                        entry.push((a.pc, ahead, a.size));
                    }
                    if self.pending.len() > 64 {
                        // Bounded hardware queue: forget the oldest line.
                        if let Some(&k) = self.pending.keys().next() {
                            self.pending.remove(&k);
                        }
                    }
                    // The index element may already be on-chip: chase now.
                    if ctx.l1_contains(ahead) {
                        if let Some(l) = self.learned.get(&a.pc) {
                            let v = ctx.read_uint(ahead, a.size.min(8));
                            if let Some(t) = indirect_target(l.base, v, l.shift) {
                                ctx.prefetch_tagged(t, 1);
                            }
                        }
                    }
                }
            }
        } else if matches!(a.served, ServedBy::L3 | ServedBy::Dram) {
            if let Some(base) = self.learn_from_miss(a.vaddr) {
                ctx.trace_note("imp-pattern-learned", base);
            }
        }
    }

    fn on_fill(&mut self, ctx: &mut PrefetchCtx<'_>, fill: &FillEvent) {
        let Some(waiters) = self.pending.remove(&fill.line_addr) else {
            return;
        };
        for (pc, elem_addr, size) in waiters {
            if let Some(l) = self.learned.get(&pc) {
                let v = ctx.read_uint(elem_addr, size.min(8));
                if let Some(t) = indirect_target(l.base, v, l.shift) {
                    ctx.prefetch_tagged(t, 1);
                }
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        // Paper §VI-E: IMP ≈ 1.4× Prodigy's storage. Stream table + IPD.
        self.streams.len() as u64 * 131 + 16 * (64 + 2 + 2) + 64 * (64 + 32)
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Rig;

    /// Builds `B` (index array) and a target `A` such that the access
    /// pattern is `A[B[i]]` with 4-byte A elements.
    fn setup(rig: &mut Rig, n: u64) -> (u64, u64) {
        let b = rig.space.alloc(n * 4, 64);
        let a = rig.space.alloc(4096 * 4, 64);
        let mut x = 1234u64;
        for i in 0..n {
            x = x.wrapping_mul(48271) % 0x7fff_ffff;
            rig.space.write_u32(b + i * 4, (x % 4096) as u32);
        }
        (b, a)
    }

    #[test]
    fn learns_a_of_b_pattern_and_prefetches() {
        let mut rig = Rig::new();
        let (b, a) = setup(&mut rig, 256);
        let mut pf = ImpPrefetcher::new(8);
        for i in 0..64u64 {
            rig.demand(&mut pf, b + i * 4, 10); // stream through B
            let v = rig.space.read_u32(b + i * 4) as u64;
            rig.demand(&mut pf, a + v * 4, 20); // indirect access A[B[i]]
            rig.run_fills(&mut pf, rig.now);
        }
        assert!(
            pf.learned.contains_key(&10),
            "coefficient for the B-stream must be learned"
        );
        assert!(rig.stats.prefetches_issued > 10);
        // After training, the indirect target for i+8 should frequently be
        // resident before the demand touches it.
        rig.run_fills(&mut pf, u64::MAX);
        let mut hits = 0;
        for i in 64..72u64 {
            let v = rig.space.read_u32(b + i * 4) as u64;
            if rig.mem.l1_contains(0, a + v * 4) {
                hits += 1;
            }
        }
        assert!(hits >= 4, "only {hits}/8 indirect targets resident");
    }

    #[test]
    fn no_stream_means_no_learning() {
        let mut rig = Rig::new();
        let (_, a) = setup(&mut rig, 64);
        let mut pf = ImpPrefetcher::default();
        let mut x = 5u64;
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rig.demand(&mut pf, a + (x % 4096) * 4, 20);
        }
        assert!(pf.learned.is_empty());
    }

    #[test]
    fn shift_matches_element_size() {
        let mut rig = Rig::new();
        let (b, a) = setup(&mut rig, 128);
        let mut pf = ImpPrefetcher::new(4);
        for i in 0..48u64 {
            rig.demand(&mut pf, b + i * 4, 10);
            let v = rig.space.read_u32(b + i * 4) as u64;
            rig.demand(&mut pf, a + v * 4, 20);
        }
        let l = pf.learned.get(&10).expect("learned");
        assert_eq!(l.shift, 2, "4-byte targets imply shift 2");
        assert_eq!(l.base, a);
    }
}
