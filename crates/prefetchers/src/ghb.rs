//! GHB-based Global/Delta-Correlation (G/DC) prefetcher
//! (Nesbit & Smith, HPCA 2004) — the paper's conventional-prefetcher
//! comparison (§VI-C: "known to predict inaccurate prefetch addresses for
//! irregular memory accesses due to the lack of spatial locality").
//!
//! A circular Global History Buffer records the global L1-miss address
//! stream; an index table keyed by the last two address deltas points at
//! the most recent occurrence of that delta pair. On a miss, the delta
//! history following the previous occurrence predicts the next addresses.

use prodigy_sim::fxhash::FxBuildHasher;
use prodigy_sim::prefetch::{DemandAccess, FillEvent, PrefetchCtx, Prefetcher};
use prodigy_sim::ServedBy;
use std::any::Any;
use std::collections::HashMap;

/// GHB G/DC prefetcher.
#[derive(Debug)]
pub struct GhbGdcPrefetcher {
    ghb: Vec<u64>,
    head: usize,
    filled: usize,
    // Fx-hashed: this map is only ever inserted into / probed (never
    // iterated), so the hasher cannot affect behavior — and it sits on the
    // per-miss hot path of the heaviest fig02 cell.
    index: HashMap<(i64, i64), usize, FxBuildHasher>,
    degree: u32,
    last: [u64; 3],
    seen: usize,
}

impl Default for GhbGdcPrefetcher {
    fn default() -> Self {
        Self::new(256, 4)
    }
}

impl GhbGdcPrefetcher {
    /// Creates a G/DC prefetcher with a `capacity`-entry GHB and prefetch
    /// `degree`.
    pub fn new(capacity: usize, degree: u32) -> Self {
        assert!(capacity >= 8, "GHB too small to correlate");
        GhbGdcPrefetcher {
            ghb: vec![0; capacity],
            head: 0,
            filled: 0,
            index: HashMap::default(),
            degree,
            last: [0; 3],
            seen: 0,
        }
    }

    fn push(&mut self, addr: u64) {
        self.ghb[self.head] = addr;
        self.head = (self.head + 1) % self.ghb.len();
        self.filled = (self.filled + 1).min(self.ghb.len());
    }

    /// Age of a GHB position (0 = newest); used to reject stale index hits
    /// overwritten by the circular buffer.
    fn pos_is_live(&self, pos: usize) -> bool {
        if self.filled < self.ghb.len() {
            return pos < self.head;
        }
        true
    }

    fn at(&self, pos: usize) -> u64 {
        self.ghb[pos % self.ghb.len()]
    }
}

impl Prefetcher for GhbGdcPrefetcher {
    fn name(&self) -> &'static str {
        "ghb-gdc"
    }

    fn on_demand(&mut self, ctx: &mut PrefetchCtx<'_>, a: &DemandAccess) {
        // G/DC trains on the global miss stream.
        if a.served == ServedBy::L1 {
            return;
        }
        self.last = [self.last[1], self.last[2], a.vaddr];
        self.seen += 1;
        let pos = self.head;
        self.push(a.vaddr);
        if self.seen < 3 {
            return;
        }
        let d1 = self.last[2] as i64 - self.last[1] as i64;
        let d2 = self.last[1] as i64 - self.last[0] as i64;
        let key = (d2, d1);
        let prev = self.index.insert(key, pos);
        if let Some(p) = prev {
            if self.pos_is_live(p) {
                ctx.trace_note("ghb-correlation-hit", a.vaddr);
                // Replay the deltas that followed the previous occurrence.
                let mut predicted = a.vaddr as i64;
                for k in 1..=self.degree as usize {
                    let older = self.at(p + k - 1) as i64;
                    let newer = self.at(p + k) as i64;
                    if p + k >= pos {
                        break;
                    }
                    let delta = newer - older;
                    predicted += delta;
                    if predicted > 0 && delta != 0 {
                        // Attribute to the replay depth: how far down the
                        // correlated delta chain this prediction sits.
                        ctx.prefetch_tagged(predicted as u64, k as u16);
                    }
                }
            }
        }
    }

    fn on_fill(&mut self, _ctx: &mut PrefetchCtx<'_>, _fill: &FillEvent) {}

    fn storage_bits(&self) -> u64 {
        // GHB entries (address + link) plus a 256-entry index table.
        self.ghb.len() as u64 * (64 + 8) + 256 * (32 + 8)
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Rig;

    #[test]
    fn learns_repeating_delta_pattern() {
        let mut rig = Rig::new();
        let mut pf = GhbGdcPrefetcher::default();
        // Repeating delta sequence +64, +128, +256 over a miss stream.
        let mut addr = 0x100_0000u64;
        let deltas = [64u64, 128, 256];
        for rep in 0..6 {
            for &d in &deltas {
                rig.demand(&mut pf, addr, 1);
                addr += d;
            }
            let _ = rep;
        }
        assert!(
            rig.stats.prefetches_issued > 0,
            "delta correlation should fire on a repeating pattern"
        );
    }

    #[test]
    fn random_miss_stream_yields_little() {
        let mut rig = Rig::new();
        let mut pf = GhbGdcPrefetcher::default();
        let mut x = 7u64;
        for _ in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rig.demand(&mut pf, (x >> 16) % (256 << 20), 1);
        }
        // Random deltas never repeat as pairs: (almost) nothing predicted.
        assert!(
            rig.stats.prefetches_issued < 5,
            "issued {} on random stream",
            rig.stats.prefetches_issued
        );
    }

    #[test]
    fn l1_hits_do_not_train() {
        let mut rig = Rig::new();
        let mut pf = GhbGdcPrefetcher::default();
        for i in 0..20u64 {
            rig.notify(&mut pf, 0x50_0000 + i * 64, 1, ServedBy::L1);
        }
        assert_eq!(rig.stats.prefetches_issued, 0);
    }
}

#[cfg(test)]
mod wraparound_tests {
    use super::*;
    use crate::testutil::Rig;

    #[test]
    fn ghb_survives_buffer_wraparound() {
        // Push far more misses than the GHB holds; stale index entries must
        // be rejected, not chased into garbage.
        let mut rig = Rig::new();
        let mut pf = GhbGdcPrefetcher::new(16, 2);
        let mut addr = 0x200_0000u64;
        for i in 0..500u64 {
            rig.demand(&mut pf, addr, 1);
            addr += 64 + (i % 7) * 128; // semi-repeating deltas
        }
        // No assertion beyond "did not panic / did not explode": issue
        // volume stays bounded by degree × misses.
        assert!(rig.stats.prefetches_issued < 2 * 500);
    }

    #[test]
    fn tiny_ghb_rejected() {
        let r = std::panic::catch_unwind(|| GhbGdcPrefetcher::new(4, 2));
        assert!(r.is_err(), "capacity < 8 must be rejected");
    }
}
