//! # prodigy — the paper's core contribution
//!
//! This crate implements Prodigy (Talati et al., HPCA 2021): a
//! hardware-software co-designed prefetcher for data-indirect irregular
//! workloads. Software describes the layout and traversal pattern of the
//! workload's key data structures as a **Data Indirection Graph** ([`Dig`]):
//! nodes are arrays (base address, capacity, element size), weighted edges
//! are data-dependent indirections — *single-valued* (`w0`, `b[a[i]]`) and
//! *ranged* (`w1`, `b[a[i] .. a[i+1]]`) — plus a *trigger* self-edge (`w2`)
//! naming the structure whose demand accesses start prefetch sequences.
//!
//! The hardware side ([`ProdigyPrefetcher`]) stores the DIG in three small
//! memory-mapped tables ([`tables`]), tracks in-flight prefetch sequences in
//! a PreFetch status Handling Register file ([`pfhr`]), reacts to L1D demand
//! accesses (sequence initialisation, with a depth-adaptive look-ahead) and
//! prefetch fills (sequence advance through the indirection functions), and
//! drops sequences the core has caught up with.
//!
//! ## Example: describing a BFS-shaped traversal
//!
//! ```
//! use prodigy::{Dig, EdgeKind, TriggerSpec};
//!
//! let mut dig = Dig::new();
//! let wq = dig.node(0x1000, 100, 4);       // work queue
//! let off = dig.node(0x2000, 101, 4);      // offset list
//! let edg = dig.node(0x3000, 1000, 4);     // edge list
//! let vis = dig.node(0x4000, 100, 4);      // visited list
//! dig.edge(wq, off, EdgeKind::SingleValued);
//! dig.edge(off, edg, EdgeKind::Ranged);
//! dig.edge(edg, vis, EdgeKind::SingleValued);
//! dig.trigger(wq, TriggerSpec::default());
//! assert_eq!(dig.depth_from_trigger(), 4);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod context;
pub mod dig;
pub mod pfhr;
pub mod prefetcher;
pub mod storage;
pub mod tables;
pub mod throttle;

pub use api::DigProgram;
pub use context::ProdigyContext;
pub use dig::{
    edge_tag, node_tag, Dig, DigError, EdgeKind, NodeId, TraversalDirection, TriggerSpec,
};
pub use pfhr::{PfhrEntry, PfhrFile};
pub use prefetcher::{ProdigyConfig, ProdigyPrefetcher, ProdigyStats};
pub use tables::{EdgeRecord, EdgeTable, NodeRecord, NodeTable};
