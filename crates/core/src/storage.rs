//! Hardware storage accounting (paper §VI-E).
//!
//! The paper assumes 48-bit physical / 64-bit virtual addresses and
//! conservatively sizes 16-entry DIG tables plus 16 PFHRs, arriving at
//! ≈ 0.53 KB of DIG storage + 0.26 KB of PFHRs ≈ **0.8 KB** total. The
//! functions here reproduce that arithmetic from a [`ProdigyConfig`], so the
//! overhead table in the benchmarks is computed, not hard-coded.

use crate::prefetcher::ProdigyConfig;

/// Virtual address width assumed by the paper.
pub const VADDR_BITS: u64 = 64;
/// Physical address width assumed by the paper.
pub const PADDR_BITS: u64 = 48;
/// log2(line size): low bits dropped from line-aligned physical addresses.
pub const LINE_SHIFT: u64 = 6;

/// Bits of one node-table row: node id + base + bound (virtual) + data size
/// + trigger flag.
pub fn node_entry_bits() -> u64 {
    4 + VADDR_BITS + VADDR_BITS + 8 + 1
}

/// Bits of one edge-table row: source/destination base addresses (virtual)
/// + 2-bit edge type.
pub fn edge_entry_bits() -> u64 {
    VADDR_BITS + VADDR_BITS + 2
}

/// Bits of one edge-index-table row: first-edge pointer + count.
pub fn edge_index_entry_bits() -> u64 {
    4 + 4
}

/// Bits of one PFHR: free bit + node id + trigger address (virtual) +
/// outstanding line-aligned physical address + 16-bit offset bitmap, plus
/// the ranged-stream continuation this reproduction adds (next line-aligned
/// address + 14-bit remaining-length) — 56 bits over the paper's field
/// list, taking the total from the paper's 0.8 KB to ≈0.9 KB.
pub fn pfhr_entry_bits() -> u64 {
    1 + 4 + VADDR_BITS + (PADDR_BITS - LINE_SHIFT) + 16 + ((PADDR_BITS - LINE_SHIFT) + 14)
}

/// Total DIG-table bits for a configuration.
pub fn dig_table_bits(cfg: &ProdigyConfig) -> u64 {
    cfg.node_capacity as u64 * (node_entry_bits() + edge_index_entry_bits())
        + cfg.edge_capacity as u64 * edge_entry_bits()
}

/// Total PFHR-file bits.
pub fn pfhr_bits(cfg: &ProdigyConfig) -> u64 {
    cfg.pfhr_entries as u64 * pfhr_entry_bits()
}

/// Total prefetcher storage in bits.
pub fn total_bits(cfg: &ProdigyConfig) -> u64 {
    dig_table_bits(cfg) + pfhr_bits(cfg)
}

/// Total prefetcher storage in kilobytes.
pub fn total_kib(cfg: &ProdigyConfig) -> f64 {
    total_bits(cfg) as f64 / 8.0 / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_papers_point_eight_kb() {
        let cfg = ProdigyConfig::default();
        let dig_kb = dig_table_bits(&cfg) as f64 / 8.0 / 1024.0;
        let pfhr_kb = pfhr_bits(&cfg) as f64 / 8.0 / 1024.0;
        // Paper: DIG tables 0.53 KB, PFHRs 0.26 KB, total 0.8 KB. Our PFHRs
        // carry 56 extra continuation bits each (see pfhr_entry_bits),
        // taking the total to ≈0.9 KB.
        assert!((0.4..0.6).contains(&dig_kb), "DIG tables: {dig_kb} KB");
        assert!((0.25..0.40).contains(&pfhr_kb), "PFHRs: {pfhr_kb} KB");
        let total = total_kib(&cfg);
        assert!((0.8..1.0).contains(&total), "total: {total} KB");
    }

    #[test]
    fn storage_scales_with_pfhr_count() {
        let small = ProdigyConfig {
            pfhr_entries: 4,
            ..ProdigyConfig::default()
        };
        let big = ProdigyConfig {
            pfhr_entries: 32,
            ..ProdigyConfig::default()
        };
        assert_eq!(pfhr_bits(&big) - pfhr_bits(&small), 28 * pfhr_entry_bits());
        assert!(total_bits(&big) > total_bits(&small));
    }
}
