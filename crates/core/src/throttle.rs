//! Feedback-directed prefetch throttling — the paper's explicit future
//! work (§IV-G: "We envision Prodigy to be used alongside a prefetch
//! throttling mechanism similar to [Srinath et al., HPCA'07] that can
//! identify and prevent prefetch-induced cache pollution").
//!
//! The mechanism implemented here follows that FDP shape: the prefetcher
//! periodically samples its own accuracy (the fraction of resolved
//! prefetches that were demanded before eviction, which the cache
//! hierarchy already tracks) and modulates aggressiveness — the number of
//! sequences initialised per trigger — between 1 and the software-requested
//! value. Disabled by default, matching the paper's evaluated design;
//! `examples/design_space.rs` and the ablation bench exercise it.

use prodigy_sim::stats::PrefetchUse;

/// Throttle parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleSpec {
    /// Re-evaluate after this many newly resolved prefetches.
    pub window: u64,
    /// Below this accuracy, halve aggressiveness.
    pub low_accuracy: f64,
    /// Above this accuracy, restore aggressiveness one step.
    pub high_accuracy: f64,
}

impl Default for ThrottleSpec {
    fn default() -> Self {
        ThrottleSpec {
            window: 2048,
            low_accuracy: 0.40,
            high_accuracy: 0.75,
        }
    }
}

/// Runtime state of the feedback loop.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackThrottle {
    spec: ThrottleSpec,
    last_resolved: u64,
    last_useful: u64,
    level: u32,
    /// Times aggressiveness was reduced (for ablation reporting).
    pub reductions: u64,
}

impl FeedbackThrottle {
    /// Creates a throttle starting at `max_level` sequences per trigger.
    pub fn new(spec: ThrottleSpec, max_level: u32) -> Self {
        FeedbackThrottle {
            spec,
            last_resolved: 0,
            last_useful: 0,
            level: max_level.max(1),
            reductions: 0,
        }
    }

    /// Returns the sequences-per-trigger to use right now, given the
    /// requested maximum and the hierarchy's cumulative usefulness
    /// counters; adapts once per window of resolved prefetches.
    pub fn sequences(&mut self, requested: u32, usefulness: &PrefetchUse) -> u32 {
        let resolved = usefulness.resolved();
        let useful = usefulness.hit_l1 + usefulness.hit_l2 + usefulness.hit_l3;
        if resolved.saturating_sub(self.last_resolved) >= self.spec.window {
            let dr = (resolved - self.last_resolved) as f64;
            let du = useful.saturating_sub(self.last_useful) as f64;
            let acc = if dr > 0.0 { du / dr } else { 1.0 };
            if acc < self.spec.low_accuracy && self.level > 1 {
                self.level = (self.level / 2).max(1);
                self.reductions += 1;
            } else if acc > self.spec.high_accuracy && self.level < requested.max(1) {
                self.level += 1;
            }
            self.last_resolved = resolved;
            self.last_useful = useful;
        }
        self.level.min(requested.max(1))
    }

    /// Current aggressiveness level (sequences per trigger before the
    /// requested-maximum clamp).
    pub fn level(&self) -> u32 {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn use_counts(useful: u64, evicted: u64) -> PrefetchUse {
        PrefetchUse {
            hit_l1: useful,
            hit_l2: 0,
            hit_l3: 0,
            evicted_unused: evicted,
        }
    }

    #[test]
    fn low_accuracy_halves_aggressiveness() {
        let mut t = FeedbackThrottle::new(
            ThrottleSpec {
                window: 100,
                ..ThrottleSpec::default()
            },
            4,
        );
        assert_eq!(t.sequences(4, &use_counts(0, 0)), 4);
        // 100 resolved, 10 useful → 10% accuracy → halve.
        assert_eq!(t.sequences(4, &use_counts(10, 90)), 2);
        // Another bad window → 1, and it floors there.
        assert_eq!(t.sequences(4, &use_counts(15, 185)), 1);
        assert_eq!(t.sequences(4, &use_counts(20, 290)), 1);
        assert_eq!(t.reductions, 2);
    }

    #[test]
    fn high_accuracy_restores_stepwise() {
        let mut t = FeedbackThrottle::new(
            ThrottleSpec {
                window: 100,
                ..ThrottleSpec::default()
            },
            4,
        );
        t.sequences(4, &use_counts(5, 95)); // drop to 2
        assert_eq!(t.sequences(4, &use_counts(105, 95)), 3); // 100% window
        assert_eq!(t.sequences(4, &use_counts(205, 95)), 4);
        assert_eq!(
            t.sequences(4, &use_counts(305, 95)),
            4,
            "capped at requested"
        );
    }

    #[test]
    fn no_adaptation_inside_a_window() {
        let mut t = FeedbackThrottle::new(ThrottleSpec::default(), 4);
        for i in 0..10 {
            assert_eq!(t.sequences(4, &use_counts(i, i)), 4);
        }
    }
}
