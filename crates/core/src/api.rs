//! The application↔hardware interface (paper §III-B3, Fig. 8d).
//!
//! An instrumented binary contains a short prologue of registration calls —
//! `registerNode`, `registerTravEdge`, `registerTrigEdge` — that a run-time
//! library translates into stores to the prefetcher's memory-mapped tables.
//! [`DigProgram`] is that prologue, reified: a recorded list of API calls
//! that the compiler pass (or hand annotation) emits and that can be applied
//! to any simulated system. Applying it to a machine whose prefetchers are
//! not Prodigy is a harmless no-op, just as the real calls would be on a
//! CPU without the hardware.

use crate::dig::{Dig, EdgeKind, TriggerSpec};
use crate::prefetcher::ProdigyPrefetcher;
use prodigy_sim::prefetch::Prefetcher;

/// One registration call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApiCall {
    /// `registerNode(base, num_elems, elem_size, node_id)`.
    RegisterNode {
        /// Array base address.
        base: u64,
        /// Number of elements.
        elems: u64,
        /// Element size in bytes.
        elem_size: u8,
        /// Node id.
        id: u8,
    },
    /// `registerTravEdge(src_addr, dst_addr, edge_type)` — addresses are
    /// resolved against the node table at run time (Fig. 8d).
    RegisterTravEdge {
        /// Any address inside the source array (typically its base).
        src_addr: u64,
        /// Any address inside the destination array.
        dst_addr: u64,
        /// `w0` or `w1`.
        kind: EdgeKind,
    },
    /// `registerTrigEdge(addr, w2)`.
    RegisterTrigEdge {
        /// Any address inside the trigger array.
        addr: u64,
        /// Sequence-initialisation parameters.
        spec: TriggerSpec,
    },
}

/// A recorded sequence of registration calls plus the address ranges they
/// describe (used by the Fig. 13/16 "prefetchable" classifier).
///
/// ```
/// use prodigy::{Dig, DigProgram, EdgeKind, ProdigyPrefetcher, TriggerSpec};
/// use prodigy_sim::prefetch::Prefetcher;
///
/// let mut dig = Dig::new();
/// let a = dig.node(0x1000, 64, 4);
/// let b = dig.node(0x2000, 64, 4);
/// dig.edge(a, b, EdgeKind::SingleValued);
/// dig.trigger(a, TriggerSpec::default());
///
/// let prologue = DigProgram::from_dig(&dig);
/// let mut pf = ProdigyPrefetcher::default();
/// prologue.apply(&mut pf);            // programs Prodigy hardware
/// let mut none = prodigy_sim::NullPrefetcher::new();
/// prologue.apply(&mut none);          // harmless on anything else
/// assert!(prologue.classifier()(0x1010));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DigProgram {
    calls: Vec<ApiCall>,
}

impl DigProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the registration prologue for a complete [`Dig`].
    pub fn from_dig(dig: &Dig) -> Self {
        let mut p = DigProgram::new();
        for (i, n) in dig.nodes().iter().enumerate() {
            p.calls.push(ApiCall::RegisterNode {
                base: n.base,
                elems: n.elems,
                elem_size: n.elem_size,
                id: i as u8,
            });
        }
        for e in dig.edges() {
            if let (Some(s), Some(d)) = (dig.get(e.src), dig.get(e.dst)) {
                p.calls.push(ApiCall::RegisterTravEdge {
                    src_addr: s.base,
                    dst_addr: d.base,
                    kind: e.kind,
                });
            }
        }
        if let Some((t, spec)) = dig.trigger_spec() {
            if let Some(n) = dig.get(t) {
                p.calls
                    .push(ApiCall::RegisterTrigEdge { addr: n.base, spec });
            }
        }
        p
    }

    /// Appends a raw call (used by the compiler's codegen).
    pub fn push(&mut self, call: ApiCall) {
        self.calls.push(call);
    }

    /// The recorded calls in program order.
    pub fn calls(&self) -> &[ApiCall] {
        &self.calls
    }

    /// Executes the prologue against one prefetcher. Non-Prodigy prefetchers
    /// ignore it (the downcast fails), mirroring a binary whose API calls hit
    /// an absent device.
    pub fn apply(&self, prefetcher: &mut dyn Prefetcher) {
        let Some(p) = prefetcher.as_any_mut().downcast_mut::<ProdigyPrefetcher>() else {
            return;
        };
        for c in &self.calls {
            match *c {
                ApiCall::RegisterNode {
                    base,
                    elems,
                    elem_size,
                    id,
                } => {
                    p.register_node(base, elems, elem_size, id);
                }
                ApiCall::RegisterTravEdge {
                    src_addr,
                    dst_addr,
                    kind,
                } => {
                    p.register_trav_edge(src_addr, dst_addr, kind);
                }
                ApiCall::RegisterTrigEdge { addr, spec } => {
                    p.register_trig_edge(addr, spec);
                }
            }
        }
    }

    /// Address ranges of all registered nodes, for classifying LLC misses as
    /// prefetchable (inside annotated structures) in Fig. 13/16.
    pub fn annotated_ranges(&self) -> Vec<(u64, u64)> {
        self.calls
            .iter()
            .filter_map(|c| match *c {
                ApiCall::RegisterNode {
                    base,
                    elems,
                    elem_size,
                    ..
                } => Some((base, base + elems * elem_size as u64)),
                _ => None,
            })
            .collect()
    }

    /// A classifier closure over [`DigProgram::annotated_ranges`], ready for
    /// [`prodigy_sim::MemorySystem::set_llc_miss_classifier`].
    pub fn classifier(&self) -> Box<dyn Fn(u64) -> bool + Send> {
        let ranges = self.annotated_ranges();
        Box::new(move |addr| ranges.iter().any(|&(lo, hi)| (lo..hi).contains(&addr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodigy_sim::NullPrefetcher;

    fn sample_dig() -> Dig {
        let mut d = Dig::new();
        let a = d.node(0x1000, 16, 4);
        let b = d.node(0x2000, 16, 4);
        d.edge(a, b, EdgeKind::SingleValued);
        d.trigger(a, TriggerSpec::default());
        d
    }

    #[test]
    fn from_dig_records_all_calls() {
        let p = DigProgram::from_dig(&sample_dig());
        assert_eq!(p.calls().len(), 4); // 2 nodes + 1 edge + 1 trigger
    }

    #[test]
    fn apply_programs_a_prodigy_prefetcher() {
        let p = DigProgram::from_dig(&sample_dig());
        let mut pf = ProdigyPrefetcher::default();
        p.apply(&mut pf);
        assert_eq!(pf.node_table().rows().len(), 2);
        assert_eq!(pf.edge_table().rows().len(), 1);
        assert!(pf.node_table().trigger().is_some());
    }

    #[test]
    fn apply_is_noop_on_other_prefetchers() {
        let p = DigProgram::from_dig(&sample_dig());
        let mut null = NullPrefetcher::new();
        p.apply(&mut null); // must not panic
    }

    #[test]
    fn classifier_matches_annotated_ranges_only() {
        let p = DigProgram::from_dig(&sample_dig());
        let f = p.classifier();
        assert!(f(0x1000) && f(0x103f) && f(0x2000));
        assert!(!f(0x1040) && !f(0x0fff) && !f(0x9000));
    }

    #[test]
    fn ranges_cover_both_nodes() {
        let p = DigProgram::from_dig(&sample_dig());
        assert_eq!(
            p.annotated_ranges(),
            vec![(0x1000, 0x1040), (0x2000, 0x2040)]
        );
    }
}
