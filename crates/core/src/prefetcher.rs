//! The Prodigy hardware prefetcher state machine (paper §IV, Fig. 11).
//!
//! The prefetcher snoops its core's L1D. Two phases drive it:
//!
//! * **Sequence initialisation** (§IV-C1): a demand load inside the trigger
//!   structure starts prefetch sequences at a look-ahead distance chosen by
//!   the DIG-depth heuristic (deep chains → short look-ahead). Several
//!   sequences start per trigger so some survive even if others are dropped.
//!   When the core's demand stream reaches the *trigger address* of a live
//!   sequence, that sequence is dropped — the prefetcher stays ahead rather
//!   than partially hiding latency.
//! * **Sequence advance** (§IV-C2): a prefetch fill is CAM-matched against
//!   the PFHR file; the fetched values are run through the node's outgoing
//!   DIG edges — single-valued indirection computes `dst.base + v·size`,
//!   ranged indirection streams `dst[v_i .. v_{i+1}]` — and the chain
//!   continues until a leaf node.

use crate::dig::{edge_tag, node_tag, Dig, EdgeKind, NodeId, TraversalDirection, TriggerSpec};
use crate::pfhr::{PfhrFile, RangeCont};
use crate::tables::{EdgeRecord, EdgeTable, NodeRecord, NodeTable};
use prodigy_sim::line_of;
use prodigy_sim::prefetch::{DemandAccess, FillEvent, PrefetchCtx, Prefetcher};
use std::any::Any;
use std::collections::BTreeSet;

/// Hardware sizing knobs (defaults follow §VI-E: 16-entry DIG tables,
/// 16-entry PFHR file, 0.8 KB total).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProdigyConfig {
    /// PFHR registers (Fig. 12 explores 4–32; 16 is the chosen design).
    pub pfhr_entries: usize,
    /// Node-table rows.
    pub node_capacity: usize,
    /// Edge-table rows.
    pub edge_capacity: usize,
    /// Cap on lines expanded per ranged indirection *into a leaf node*
    /// (leaf prefetches carry no PFHR, so nothing can stream them).
    pub max_range_lines: usize,
    /// Lines issued per ranged-indirection window; the window's last PFHR
    /// carries a continuation, so long ranges (hub vertices) stream through
    /// the bounded register file fill-by-fill instead of burst-issuing.
    pub range_window: usize,
    /// Hardware override of the software-specified/heuristic look-ahead
    /// distance (ablation knob; `None` = follow the trigger edge).
    pub lookahead_override: Option<u32>,
    /// Hardware override of the sequences-per-trigger count (ablation knob).
    pub sequences_override: Option<u32>,
    /// Optional feedback-directed throttling (§IV-G future work; off in the
    /// paper's evaluated design).
    pub throttle: Option<crate::throttle::ThrottleSpec>,
}

impl Default for ProdigyConfig {
    fn default() -> Self {
        ProdigyConfig {
            pfhr_entries: 16,
            node_capacity: 16,
            edge_capacity: 16,
            max_range_lines: 16,
            range_window: 4,
            lookahead_override: None,
            sequences_override: None,
            throttle: None,
        }
    }
}

/// Prefetcher-internal counters (beyond what the simulator records).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProdigyStats {
    /// Prefetch sequences initialised.
    pub sequences_initiated: u64,
    /// Sequences dropped because the core caught up (§IV-C1).
    pub sequences_dropped: u64,
    /// Prefetches issued through single-valued (`w0`) edges.
    pub single_prefetches: u64,
    /// Prefetches issued through ranged (`w1`) edges.
    pub ranged_prefetches: u64,
    /// Prefetches of trigger-structure elements themselves.
    pub trigger_prefetches: u64,
    /// Chain advances performed directly from on-chip data (no fill needed).
    pub inline_advances: u64,
    /// Prefetches dropped because the PFHR file was full (Fig. 12's hazard).
    pub pfhr_drops: u64,
    /// Elements run through the sequence-advance state machine.
    pub elements_advanced: u64,
    /// Elements registered for tracking by ranged expansions.
    pub range_elements_tracked: u64,
}

impl ProdigyStats {
    /// Fraction of prefetched *data elements* reached via ranged edges —
    /// the §VI-C statistic (paper: 35.4–75.9 %, 55.3 % average for graph
    /// algorithms).
    pub fn ranged_share(&self) -> f64 {
        let tot = self.single_prefetches + self.range_elements_tracked;
        if tot == 0 {
            0.0
        } else {
            self.range_elements_tracked as f64 / tot as f64
        }
    }
}

/// The per-core Prodigy prefetcher instance.
///
/// ```
/// use prodigy::{Dig, EdgeKind, ProdigyPrefetcher, TriggerSpec};
///
/// // Describe an A[B[i]] workload and program the hardware.
/// let mut dig = Dig::new();
/// let b = dig.node(0x1000, 256, 4);
/// let a = dig.node(0x2000, 256, 4);
/// dig.edge(b, a, EdgeKind::SingleValued);
/// dig.trigger(b, TriggerSpec::default());
///
/// let mut pf = ProdigyPrefetcher::default();
/// pf.program(&dig)?;
/// assert_eq!(pf.node_table().rows().len(), 2);
/// # Ok::<(), prodigy::DigError>(())
/// ```
#[derive(Debug)]
pub struct ProdigyPrefetcher {
    cfg: ProdigyConfig,
    nodes: NodeTable,
    edges: EdgeTable,
    pfhr: PfhrFile,
    live: BTreeSet<u64>,
    cached_depth: u32,
    stats: ProdigyStats,
    throttle: Option<crate::throttle::FeedbackThrottle>,
    /// Last sequences-per-trigger value reported to the telemetry layer
    /// (None until the first throttled trigger).
    traced_level: Option<u32>,
}

impl Default for ProdigyPrefetcher {
    fn default() -> Self {
        Self::new(ProdigyConfig::default())
    }
}

impl ProdigyPrefetcher {
    /// Creates a prefetcher with the given hardware sizing.
    pub fn new(cfg: ProdigyConfig) -> Self {
        ProdigyPrefetcher {
            nodes: NodeTable::new(cfg.node_capacity),
            edges: EdgeTable::new(cfg.edge_capacity),
            pfhr: PfhrFile::new(cfg.pfhr_entries),
            live: BTreeSet::new(),
            cached_depth: 0,
            stats: ProdigyStats::default(),
            throttle: cfg
                .throttle
                .map(|spec| crate::throttle::FeedbackThrottle::new(spec, 4)),
            traced_level: None,
            cfg,
        }
    }

    /// `registerNode` (Fig. 6/8d): describes an array to the hardware.
    /// Returns `false` if the node table is full.
    pub fn register_node(&mut self, base: u64, elems: u64, elem_size: u8, id: u8) -> bool {
        let ok = self.nodes.insert(NodeRecord {
            id: NodeId(id),
            base,
            bound: base + elems * elem_size as u64,
            data_size: elem_size,
            trigger: false,
        });
        self.recompute_depth();
        ok
    }

    /// `registerTravEdge` (Fig. 8d): resolves `src_addr`/`dst_addr` against
    /// the node table and records the edge. Returns `false` when either
    /// address resolves to no registered node or the edge table is full.
    pub fn register_trav_edge(&mut self, src_addr: u64, dst_addr: u64, kind: EdgeKind) -> bool {
        let (Some(src), Some(dst)) = (
            self.nodes.containing(src_addr).map(|r| r.id),
            self.nodes.containing(dst_addr).map(|r| r.id),
        ) else {
            return false;
        };
        let ok = self.edges.insert(EdgeRecord { src, dst, kind });
        self.recompute_depth();
        ok
    }

    /// `registerTrigEdge` (Fig. 8d): marks the structure containing `addr`
    /// as the trigger.
    pub fn register_trig_edge(&mut self, addr: u64, spec: TriggerSpec) -> bool {
        let Some(id) = self.nodes.containing(addr).map(|r| r.id) else {
            return false;
        };
        let ok = self.nodes.set_trigger(id, spec);
        self.recompute_depth();
        ok
    }

    /// Programs the whole DIG at once (what the instrumented binary's
    /// start-up calls amount to).
    ///
    /// # Errors
    /// Returns the DIG's validation error if it is malformed.
    pub fn program(&mut self, dig: &Dig) -> Result<(), crate::dig::DigError> {
        dig.validate()?;
        self.reset_tables();
        for (i, n) in dig.nodes().iter().enumerate() {
            self.register_node(n.base, n.elems, n.elem_size, i as u8);
        }
        for e in dig.edges() {
            let src = dig.get(e.src).expect("validated");
            let dst = dig.get(e.dst).expect("validated");
            self.register_trav_edge(src.base, dst.base, e.kind);
        }
        let (t, spec) = dig.trigger_spec().expect("validated");
        self.register_trig_edge(dig.get(t).expect("validated").base, spec);
        Ok(())
    }

    /// Clears DIG tables and PFHRs (context switch, §IV-F).
    pub fn reset_tables(&mut self) {
        self.nodes.clear();
        self.edges.clear();
        self.pfhr.clear();
        self.live.clear();
        self.cached_depth = 0;
    }

    /// Internal counters (PFHR structural drops folded in).
    pub fn prodigy_stats(&self) -> ProdigyStats {
        ProdigyStats {
            pfhr_drops: self.pfhr.structural_drops,
            ..self.stats
        }
    }

    /// PFHR structural drops (Fig. 12's limiting hazard).
    pub fn pfhr_structural_drops(&self) -> u64 {
        self.pfhr.structural_drops
    }

    /// Read-only view of the node table.
    pub fn node_table(&self) -> &NodeTable {
        &self.nodes
    }

    /// Read-only view of the edge table.
    pub fn edge_table(&self) -> &EdgeTable {
        &self.edges
    }

    fn recompute_depth(&mut self) {
        // Longest simple path from the trigger node over the edge table.
        let Some((t, _)) = self.nodes.trigger() else {
            self.cached_depth = 0;
            return;
        };
        fn walk(edges: &EdgeTable, from: NodeId, seen: &mut Vec<NodeId>) -> u32 {
            if seen.contains(&from) {
                return 0;
            }
            seen.push(from);
            let mut best = 0;
            let outs: Vec<NodeId> = edges.from(from).map(|e| e.dst).collect();
            for d in outs {
                best = best.max(walk(edges, d, seen));
            }
            seen.pop();
            1 + best
        }
        self.cached_depth = walk(&self.edges, t.id, &mut Vec::new());
    }

    /// Issues a prefetch for `elem_addr` of `node`; see
    /// [`ProdigyPrefetcher::request_line`].
    fn request(
        &mut self,
        ctx: &mut PrefetchCtx<'_>,
        node: NodeRecord,
        elem_addr: u64,
        trigger: u64,
        depth: u32,
        tag: u16,
    ) {
        self.request_line(ctx, node, &[elem_addr], trigger, depth, None, tag);
    }

    /// Issues one prefetch covering `elems` (element addresses within a
    /// single cache line of `node`) and, for non-leaf nodes, arranges for
    /// the chain to continue through every element: PFHRs are allocated
    /// *before* issue (full file ⇒ the prefetch is dropped, §VI-A), and if
    /// the line is already on-chip the chain advances immediately for all
    /// tracked elements instead of waiting for a fill that will never come.
    /// `cont` is the range continuation the line's register should carry;
    /// `tag` names the DIG node/edge this request is attributed to.
    #[allow(clippy::too_many_arguments)]
    fn request_line(
        &mut self,
        ctx: &mut PrefetchCtx<'_>,
        node: NodeRecord,
        elems: &[u64],
        trigger: u64,
        depth: u32,
        cont: Option<RangeCont>,
        tag: u16,
    ) {
        let Some(&first) = elems.first() else { return };
        if depth > 24 {
            return;
        }
        if self.edges.is_leaf(node.id) {
            ctx.prefetch_tagged(first, tag);
            return;
        }
        let line = line_of(first);
        debug_assert!(elems.iter().all(|&e| line_of(e) == line));
        let had_entry = self.pfhr.contains_line(line);
        let mut any = false;
        for (i, &ea) in elems.iter().enumerate() {
            let c = if i == 0 { cont } else { None };
            any |= self
                .pfhr
                .allocate_with(node.id, trigger, ea, node.data_size, c);
        }
        if !any {
            return; // structural drop of the whole line (continuation lost)
        }
        let issued = ctx.prefetch_tagged(first, tag);
        if issued || had_entry {
            return; // a fill will (eventually) advance the chain
        }
        // Redundant: line already resident on-chip. Retire the register and,
        // if the data is truly there, advance every tracked element in place.
        if let Some(entry) = self.pfhr.take(line) {
            if ctx.l1_contains(first) {
                self.stats.inline_advances += 1;
                let pend: Vec<u64> = entry.pending_elems().collect();
                for ea in pend {
                    self.advance_element(ctx, node, ea, trigger, depth + 1);
                }
                if let Some(c) = entry.cont {
                    self.expand_range(
                        ctx,
                        node,
                        c.next_line,
                        c.next_line,
                        c.last_elem,
                        trigger,
                        depth + 1,
                        tag,
                    );
                }
            }
        }
    }

    /// Issues up to one window of a ranged target's lines, tracking every
    /// in-range element; the window's last register carries the rest of the
    /// range as a continuation, so the stream self-sustains fill-by-fill.
    #[allow(clippy::too_many_arguments)]
    fn expand_range(
        &mut self,
        ctx: &mut PrefetchCtx<'_>,
        dst: NodeRecord,
        from_line: u64,
        first_elem: u64,
        last_elem: u64,
        trigger: u64,
        depth: u32,
        tag: u16,
    ) {
        use prodigy_sim::LINE_BYTES;
        if depth > 24 {
            return;
        }
        if self.edges.is_leaf(dst.id) {
            // No PFHR, no continuation: stream the capped range up front.
            let sz = dst.data_size as u64;
            let mut line = from_line;
            let mut n = 0;
            while line <= last_elem && n < self.cfg.max_range_lines {
                self.stats.ranged_prefetches += 1;
                let e0 = first_elem.max(line);
                let e1 = last_elem.min(line + LINE_BYTES - 1);
                self.stats.range_elements_tracked += (e1 - e0) / sz + 1;
                ctx.prefetch_tagged(line, tag);
                line += LINE_BYTES;
                n += 1;
            }
            return;
        }
        let sz = dst.data_size as u64;
        let window = self.cfg.range_window.max(1);
        let mut line = from_line;
        let mut n = 0;
        while line <= last_elem && n < window {
            self.stats.ranged_prefetches += 1;
            // Arrays are line-aligned and element sizes divide the line
            // size, so element boundaries align with line boundaries.
            let e0 = first_elem.max(line);
            let e1 = last_elem.min(line + LINE_BYTES - 1);
            let mut ea = e0;
            let mut elems = Vec::with_capacity((LINE_BYTES / sz) as usize);
            while ea <= e1 {
                elems.push(ea);
                ea += sz;
            }
            self.stats.range_elements_tracked += elems.len() as u64;
            let next_line = line + LINE_BYTES;
            let cont = if n == window - 1 && next_line <= last_elem {
                Some(RangeCont {
                    next_line,
                    last_elem,
                })
            } else {
                None
            };
            self.request_line(ctx, dst, &elems, trigger, depth + 1, cont, tag);
            line = next_line;
            n += 1;
        }
    }

    /// Runs one fetched element through the node's outgoing edges (§IV-C2).
    fn advance_element(
        &mut self,
        ctx: &mut PrefetchCtx<'_>,
        node: NodeRecord,
        elem_addr: u64,
        trigger: u64,
        depth: u32,
    ) {
        if depth > 24 {
            return;
        }
        self.stats.elements_advanced += 1;
        let value = ctx.read_uint(elem_addr, node.data_size.min(8));
        let outs: Vec<EdgeRecord> = self.edges.from(node.id).copied().collect();
        for e in outs {
            let Some(&dst) = self.nodes.by_id(e.dst) else {
                continue;
            };
            match e.kind {
                EdgeKind::SingleValued => {
                    let target = dst.base + value * dst.data_size as u64;
                    if !dst.contains(target) {
                        continue;
                    }
                    self.stats.single_prefetches += 1;
                    ctx.trace_dig_transition(node.id.0 as u16, dst.id.0 as u16, false, elem_addr);
                    self.request(
                        ctx,
                        dst,
                        target,
                        trigger,
                        depth + 1,
                        edge_tag(node.id, dst.id),
                    );
                }
                EdgeKind::Ranged => {
                    // Need the pair (a[i], a[i+1]); skip the last element.
                    let next_addr = elem_addr + node.data_size as u64;
                    if next_addr >= node.bound {
                        continue;
                    }
                    let lo = value;
                    let hi = ctx.read_uint(next_addr, node.data_size.min(8));
                    if hi <= lo {
                        continue;
                    }
                    let first = dst.base + lo * dst.data_size as u64;
                    let last = dst.base + (hi - 1) * dst.data_size as u64;
                    if !dst.contains(first) || !dst.contains(last) {
                        continue;
                    }
                    ctx.trace_dig_transition(node.id.0 as u16, dst.id.0 as u16, true, elem_addr);
                    self.expand_range(
                        ctx,
                        dst,
                        line_of(first),
                        first,
                        last,
                        trigger,
                        depth,
                        edge_tag(node.id, dst.id),
                    );
                }
            }
        }
    }
}

impl Prefetcher for ProdigyPrefetcher {
    fn name(&self) -> &'static str {
        "prodigy"
    }

    fn on_demand(&mut self, ctx: &mut PrefetchCtx<'_>, access: &DemandAccess) {
        let _hp = prodigy_sim::ScopeGuard::enter(prodigy_sim::Component::DigWalk);
        if access.is_write {
            return;
        }
        let Some((trec, spec)) = self.nodes.trigger() else {
            return;
        };
        if !trec.contains(access.vaddr) {
            return;
        }
        let trec = *trec;
        let sz = trec.data_size as u64;
        let idx = (access.vaddr - trec.base) / sz;
        let elem_addr = trec.base + idx * sz;

        // Drop rule (§IV-C1): the demand stream has advanced *past* the
        // start of a live sequence, so whatever is still in flight could
        // only partially hide latency — free its PFHRs and spend them
        // further ahead. "Past" respects the traversal direction; sequences
        // at exactly the demanded element stay alive until the core moves
        // beyond them, so a just-in-time chain finishes its work.
        let stale: Vec<u64> = match spec.direction {
            TraversalDirection::Ascending => self.live.range(..elem_addr).copied().collect(),
            TraversalDirection::Descending => self.live.range(elem_addr + 1..).copied().collect(),
        };
        for t in stale {
            self.live.remove(&t);
            if self.pfhr.drop_sequence(t) > 0 {
                self.stats.sequences_dropped += 1;
            }
        }

        let lookahead =
            self.cfg
                .lookahead_override
                .or(spec.lookahead)
                .unwrap_or_else(|| Dig::heuristic_lookahead(self.cached_depth)) as u64;
        let mut sequences = self.cfg.sequences_override.unwrap_or(spec.sequences);
        if let Some(t) = &mut self.throttle {
            sequences = t.sequences(sequences, &ctx.prefetch_usefulness());
            // Report the applied aggressiveness to the telemetry layer on
            // the first trigger and whenever a window adaptation moves it.
            if self.traced_level != Some(sequences) {
                ctx.trace_throttle(self.traced_level.unwrap_or(sequences), sequences);
                self.traced_level = Some(sequences);
            }
        }
        let elems = trec.elems();
        for s in 0..sequences as u64 {
            let dist = lookahead + s;
            let target = match spec.direction {
                TraversalDirection::Ascending => {
                    let t = idx + dist;
                    if t >= elems {
                        break;
                    }
                    t
                }
                TraversalDirection::Descending => match idx.checked_sub(dist) {
                    Some(t) => t,
                    None => break,
                },
            };
            let taddr = trec.base + target * sz;
            if !self.live.insert(taddr) {
                continue; // sequence already initiated
            }
            self.stats.sequences_initiated += 1;
            self.stats.trigger_prefetches += 1;
            self.request(ctx, trec, taddr, taddr, 0, node_tag(trec.id));
        }
    }

    fn on_fill(&mut self, ctx: &mut PrefetchCtx<'_>, fill: &FillEvent) {
        let _hp = prodigy_sim::ScopeGuard::enter(prodigy_sim::Component::DigWalk);
        let Some(entry) = self.pfhr.take(fill.line_addr) else {
            return; // sequence was dropped, or a leaf fill
        };
        let Some(&node) = self.nodes.by_id(entry.node) else {
            return;
        };
        let elems: Vec<u64> = entry.pending_elems().collect();
        for ea in elems {
            self.advance_element(ctx, node, ea, entry.trigger_addr, 0);
        }
        // Self-sustaining ranged stream: this fill issues the next window.
        if let Some(c) = entry.cont {
            self.expand_range(
                ctx,
                node,
                c.next_line,
                c.next_line,
                c.last_elem,
                entry.trigger_addr,
                0,
                node_tag(node.id),
            );
        }
    }

    fn storage_bits(&self) -> u64 {
        crate::storage::total_bits(&self.cfg)
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prodigy_sim::prefetch::FillQueue;
    use prodigy_sim::{AddressSpace, MemorySystem, Stats, SystemConfig};

    /// Harness that owns the pieces a PrefetchCtx borrows.
    struct Rig {
        mem: MemorySystem,
        space: AddressSpace,
        stats: Stats,
        fills: FillQueue,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                mem: MemorySystem::new(SystemConfig::scaled(64).with_cores(1)),
                space: AddressSpace::new(),
                stats: Stats::default(),
                fills: FillQueue::new(),
            }
        }

        fn demand(&mut self, pf: &mut ProdigyPrefetcher, vaddr: u64, now: u64) {
            let mut ctx = PrefetchCtx::new(
                0,
                now,
                &mut self.mem,
                &self.space,
                &mut self.stats,
                &mut self.fills,
            );
            pf.on_demand(
                &mut ctx,
                &DemandAccess {
                    vaddr,
                    size: 4,
                    is_write: false,
                    pc: 0,
                    served: prodigy_sim::ServedBy::L1,
                },
            );
        }

        /// Delivers all queued fills up to time `until`.
        fn run_fills(&mut self, pf: &mut ProdigyPrefetcher, until: u64) {
            while let Some(&std::cmp::Reverse(q)) = self.fills.peek() {
                if q.at > until {
                    break;
                }
                self.fills.pop();
                let mut ctx = PrefetchCtx::new(
                    0,
                    q.at,
                    &mut self.mem,
                    &self.space,
                    &mut self.stats,
                    &mut self.fills,
                );
                pf.on_fill(
                    &mut ctx,
                    &FillEvent {
                        line_addr: q.line_addr,
                        served: q.served,
                        at: q.at,
                    },
                );
            }
        }
    }

    /// Builds the Fig. 3 toy BFS CSR in simulated memory and a programmed
    /// prefetcher for it. Layout: workQueue, offsetList, edgeList, visited.
    fn bfs_setup(rig: &mut Rig) -> (ProdigyPrefetcher, [u64; 4]) {
        let n = 64u64; // vertices
        let wq = rig.space.alloc(n * 4, 64);
        let off = rig.space.alloc((n + 1) * 4, 64);
        let edg = rig.space.alloc(n * 4 * 4, 64);
        let vis = rig.space.alloc(n * 4, 64);
        // Ring graph: vertex v has 4 neighbours v+1..v+4 (mod n).
        let mut e = 0u32;
        for v in 0..n {
            rig.space.write_u32(off + v * 4, e);
            for k in 1..=4u64 {
                rig.space
                    .write_u32(edg + e as u64 * 4, ((v + k) % n) as u32);
                e += 1;
            }
        }
        rig.space.write_u32(off + n * 4, e);
        for v in 0..n {
            rig.space.write_u32(wq + v * 4, v as u32);
        }
        let mut pf = ProdigyPrefetcher::default();
        assert!(pf.register_node(wq, n, 4, 0));
        assert!(pf.register_node(off, n + 1, 4, 1));
        assert!(pf.register_node(edg, n * 4, 4, 2));
        assert!(pf.register_node(vis, n, 4, 3));
        assert!(pf.register_trav_edge(wq, off, EdgeKind::SingleValued));
        assert!(pf.register_trav_edge(off, edg, EdgeKind::Ranged));
        assert!(pf.register_trav_edge(edg, vis, EdgeKind::SingleValued));
        assert!(pf.register_trig_edge(wq, TriggerSpec::default()));
        (pf, [wq, off, edg, vis])
    }

    #[test]
    fn depth_heuristic_uses_lookahead_one_for_bfs_dig() {
        let mut rig = Rig::new();
        let (pf, _) = bfs_setup(&mut rig);
        assert_eq!(pf.cached_depth, 4);
    }

    #[test]
    fn trigger_demand_initiates_sequences() {
        let mut rig = Rig::new();
        let (mut pf, [wq, ..]) = bfs_setup(&mut rig);
        rig.demand(&mut pf, wq, 0);
        let s = pf.prodigy_stats();
        assert_eq!(s.sequences_initiated, 4, "TriggerSpec::default seqs");
        assert!(rig.stats.prefetches_issued >= 1);
    }

    #[test]
    fn non_trigger_demand_does_not_initiate() {
        let mut rig = Rig::new();
        let (mut pf, [_, off, ..]) = bfs_setup(&mut rig);
        rig.demand(&mut pf, off, 0);
        assert_eq!(pf.prodigy_stats().sequences_initiated, 0);
    }

    #[test]
    fn chain_walks_all_four_structures() {
        let mut rig = Rig::new();
        let (mut pf, [wq, off, edg, vis]) = bfs_setup(&mut rig);
        rig.demand(&mut pf, wq, 0);
        rig.run_fills(&mut pf, u64::MAX);
        let s = pf.prodigy_stats();
        assert!(s.single_prefetches > 0, "wq→off and edg→vis edges fired");
        assert!(s.ranged_prefetches > 0, "off→edg edge fired");
        // The visited list (leaf) must have been prefetched: check residency
        // of the neighbour entries of the vertex at look-ahead distance 1.
        let _ = (off, edg);
        let u = rig.space.read_u32(wq + 4) as u64; // wq[1] = vertex 1
        let w0 = rig
            .space
            .read_u32(rig.space.read_u32(off + u * 4) as u64 * 4 + edg) as u64;
        assert!(
            rig.mem.l1_contains(0, vis + w0 * 4),
            "first neighbour's visited entry prefetched"
        );
    }

    #[test]
    fn advancing_past_a_trigger_address_drops_the_live_sequence() {
        let mut rig = Rig::new();
        let (mut pf, [wq, ..]) = bfs_setup(&mut rig);
        let la = prodigy_dig_lookahead();
        rig.demand(&mut pf, wq, 0); // initiates sequences at wq[la..la+4]
        let first = wq + la * 4;
        assert!(pf.live.contains(&first));
        rig.demand(&mut pf, first, 1); // core AT the sequence start: alive
        assert!(pf.live.contains(&first), "just-in-time chain may finish");
        rig.demand(&mut pf, first + 4, 2); // core past it: dropped
        assert!(!pf.live.contains(&first), "sequence no longer live");
        assert!(pf.prodigy_stats().sequences_dropped >= 1);
    }

    fn prodigy_dig_lookahead() -> u64 {
        Dig::heuristic_lookahead(4) as u64 // bfs DIG depth is 4
    }

    #[test]
    fn sequences_not_reinitiated_while_live() {
        let mut rig = Rig::new();
        let (mut pf, [wq, ..]) = bfs_setup(&mut rig);
        rig.demand(&mut pf, wq, 0);
        let first = pf.prodigy_stats().sequences_initiated;
        rig.demand(&mut pf, wq, 10); // same element again
        let second = pf.prodigy_stats().sequences_initiated;
        assert_eq!(first, second, "overlapping sequences deduplicated");
    }

    #[test]
    fn descending_direction_prefetches_backwards() {
        let mut rig = Rig::new();
        let n = 64u64;
        let arr = rig.space.alloc(n * 4, 64);
        let dst = rig.space.alloc(n * 4, 64);
        for i in 0..n {
            rig.space.write_u32(arr + i * 4, (n - 1 - i) as u32);
        }
        let mut pf = ProdigyPrefetcher::default();
        pf.register_node(arr, n, 4, 0);
        pf.register_node(dst, n, 4, 1);
        pf.register_trav_edge(arr, dst, EdgeKind::SingleValued);
        pf.register_trig_edge(
            arr,
            TriggerSpec {
                lookahead: Some(2),
                sequences: 2,
                direction: TraversalDirection::Descending,
            },
        );
        rig.demand(&mut pf, arr + 40 * 4, 0); // at element 40
        assert!(pf.live.contains(&(arr + 38 * 4)));
        assert!(pf.live.contains(&(arr + 37 * 4)));
        // At element 1 nothing fits below: no sequences.
        let before = pf.prodigy_stats().sequences_initiated;
        rig.demand(&mut pf, arr + 4, 1);
        assert_eq!(pf.prodigy_stats().sequences_initiated, before);
    }

    #[test]
    fn pfhr_exhaustion_limits_chaining() {
        // A 1-register file with 40 sequences spanning three cache lines of
        // the trigger structure must hit the structural hazard: same-line
        // requests merge into the single register, but the first request on
        // a *different* line finds the file full and is dropped.
        let mut rig = Rig::new();
        let n = 64u64;
        let wq = rig.space.alloc(n * 4, 64);
        let off = rig.space.alloc((n + 1) * 4, 64);
        for v in 0..n {
            rig.space.write_u32(wq + v * 4, v as u32);
            rig.space.write_u32(off + v * 4, (v * 4) as u32);
        }
        rig.space.write_u32(off + n * 4, (n * 4) as u32);
        let mut pf = ProdigyPrefetcher::new(ProdigyConfig {
            pfhr_entries: 1,
            ..ProdigyConfig::default()
        });
        pf.register_node(wq, n, 4, 0);
        pf.register_node(off, n + 1, 4, 1);
        pf.register_trav_edge(wq, off, EdgeKind::SingleValued);
        pf.register_trig_edge(
            wq,
            TriggerSpec {
                lookahead: Some(1),
                sequences: 40,
                ..TriggerSpec::default()
            },
        );
        rig.demand(&mut pf, wq, 0);
        assert!(pf.pfhr_structural_drops() > 0, "1-entry file must overflow");

        // A 32-register file absorbs the same burst without drops.
        let mut big = ProdigyPrefetcher::new(ProdigyConfig {
            pfhr_entries: 32,
            ..ProdigyConfig::default()
        });
        big.register_node(wq, n, 4, 0);
        big.register_node(off, n + 1, 4, 1);
        big.register_trav_edge(wq, off, EdgeKind::SingleValued);
        big.register_trig_edge(
            wq,
            TriggerSpec {
                lookahead: Some(1),
                sequences: 40,
                ..TriggerSpec::default()
            },
        );
        let mut rig2 = Rig::new();
        rig2.space = std::mem::take(&mut rig.space);
        rig2.demand(&mut big, wq, 0);
        assert_eq!(big.pfhr_structural_drops(), 0);
    }

    #[test]
    fn fill_after_sequence_drop_is_ignored() {
        let mut rig = Rig::new();
        let (mut pf, [wq, ..]) = bfs_setup(&mut rig);
        rig.demand(&mut pf, wq, 0);
        // Drop all live sequences before any fill is processed.
        let live: Vec<u64> = pf.live.iter().copied().collect();
        for t in live {
            rig.demand(&mut pf, t, 1);
        }
        let issued_before = rig.stats.prefetches_issued;
        rig.run_fills(&mut pf, u64::MAX);
        // Same-line sequence requests merge into one PFHR, so at least the
        // register-backed sequence must have been dropped; the fills that
        // still arrive for freed registers CAM-miss and are ignored.
        let s = pf.prodigy_stats();
        assert!(rig.stats.prefetches_issued >= issued_before);
        assert!(s.sequences_dropped >= 1);
    }

    #[test]
    fn program_from_dig_matches_manual_registration() {
        let mut rig = Rig::new();
        let (manual, [wq, off, edg, vis]) = bfs_setup(&mut rig);
        let mut dig = Dig::new();
        let a = dig.node(wq, 64, 4);
        let b = dig.node(off, 65, 4);
        let c = dig.node(edg, 256, 4);
        let d = dig.node(vis, 64, 4);
        dig.edge(a, b, EdgeKind::SingleValued);
        dig.edge(b, c, EdgeKind::Ranged);
        dig.edge(c, d, EdgeKind::SingleValued);
        dig.trigger(a, TriggerSpec::default());
        let mut programmed = ProdigyPrefetcher::default();
        programmed.program(&dig).expect("valid DIG");
        assert_eq!(
            manual.node_table().rows().len(),
            programmed.node_table().rows().len()
        );
        assert_eq!(manual.edge_table().rows(), programmed.edge_table().rows());
        assert_eq!(manual.cached_depth, programmed.cached_depth);
    }

    #[test]
    fn storage_is_under_one_kilobyte() {
        let pf = ProdigyPrefetcher::default();
        let bits = pf.storage_bits();
        assert!(bits <= 8 * 1024, "paper claims 0.8 KB; got {} bits", bits);
    }
}
