//! The prefetcher-local memory structures holding the DIG (paper Fig. 9a–c):
//! a node table (base/bound/data-size/trigger per array), an edge table
//! (src/dst base addresses + indirection type), and an edge index table that
//! finds a node's outgoing edges — "mimicking the software offset list in
//! hardware".
//!
//! These are fixed-capacity structures (16 entries each by default, §VI-E);
//! registration beyond capacity is rejected, exactly as a real SRAM would be.

use crate::dig::{EdgeKind, NodeId, TriggerSpec};

/// One node-table row (Fig. 9a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecord {
    /// Node id.
    pub id: NodeId,
    /// Base address of the array.
    pub base: u64,
    /// One-past-the-end (bound) address.
    pub bound: u64,
    /// Element size in bytes.
    pub data_size: u8,
    /// Whether this node carries the trigger edge.
    pub trigger: bool,
}

impl NodeRecord {
    /// Whether `addr` falls inside `[base, bound)`.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.bound).contains(&addr)
    }

    /// Number of elements in the array.
    pub fn elems(&self) -> u64 {
        (self.bound - self.base) / self.data_size as u64
    }
}

/// One edge-table row (Fig. 9c). Base addresses, not node ids, key the rows,
/// matching the paper's runtime that resolves addresses by scanning the node
/// table (Fig. 8d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRecord {
    /// Source node id (resolved at registration).
    pub src: NodeId,
    /// Destination node id (resolved at registration).
    pub dst: NodeId,
    /// Indirection type (`w0`/`w1`).
    pub kind: EdgeKind,
}

/// The node table: fixed-capacity array of [`NodeRecord`]s.
#[derive(Debug, Clone)]
pub struct NodeTable {
    rows: Vec<NodeRecord>,
    capacity: usize,
    trigger_spec: Option<TriggerSpec>,
}

impl NodeTable {
    /// Creates a table with room for `capacity` nodes.
    pub fn new(capacity: usize) -> Self {
        NodeTable {
            rows: Vec::with_capacity(capacity),
            capacity,
            trigger_spec: None,
        }
    }

    /// Inserts a node. Returns `false` (and ignores the insert) when the
    /// table is full — the hardware simply cannot describe more structures.
    pub fn insert(&mut self, rec: NodeRecord) -> bool {
        if self.rows.len() >= self.capacity {
            return false;
        }
        self.rows.retain(|r| r.id != rec.id);
        self.rows.push(rec);
        true
    }

    /// Scans for the node containing `addr` (the Fig. 8d
    /// `scan_node_table`). Returns the record.
    pub fn containing(&self, addr: u64) -> Option<&NodeRecord> {
        self.rows.iter().find(|r| r.contains(addr))
    }

    /// Looks up a node by id.
    pub fn by_id(&self, id: NodeId) -> Option<&NodeRecord> {
        self.rows.iter().find(|r| r.id == id)
    }

    /// Marks `id` as the trigger node with `spec`; clears any previous
    /// trigger. Returns `false` if the node is unknown.
    pub fn set_trigger(&mut self, id: NodeId, spec: TriggerSpec) -> bool {
        if self.by_id(id).is_none() {
            return false;
        }
        for r in &mut self.rows {
            r.trigger = r.id == id;
        }
        self.trigger_spec = Some(spec);
        true
    }

    /// The trigger node and spec, if programmed.
    pub fn trigger(&self) -> Option<(&NodeRecord, TriggerSpec)> {
        let spec = self.trigger_spec?;
        self.rows.iter().find(|r| r.trigger).map(|r| (r, spec))
    }

    /// Registered rows.
    pub fn rows(&self) -> &[NodeRecord] {
        &self.rows
    }

    /// Table capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears all rows (context switch to another DIG, §IV-F).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.trigger_spec = None;
    }
}

/// The edge table plus its index (Fig. 9b/c).
#[derive(Debug, Clone)]
pub struct EdgeTable {
    rows: Vec<EdgeRecord>,
    capacity: usize,
}

impl EdgeTable {
    /// Creates a table with room for `capacity` edges.
    pub fn new(capacity: usize) -> Self {
        EdgeTable {
            rows: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Inserts an edge; `false` when full or duplicate.
    pub fn insert(&mut self, rec: EdgeRecord) -> bool {
        if self.rows.len() >= self.capacity || self.rows.contains(&rec) {
            return false;
        }
        self.rows.push(rec);
        true
    }

    /// Outgoing edges of `src` (what the edge index table accelerates).
    pub fn from(&self, src: NodeId) -> impl Iterator<Item = &EdgeRecord> + '_ {
        self.rows.iter().filter(move |e| e.src == src)
    }

    /// Whether `id` has no outgoing edges (a DIG leaf: its prefetches don't
    /// allocate PFHRs, §IV-D).
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.from(id).next().is_none()
    }

    /// Whether `id` has an incoming edge (used for trigger selection).
    pub fn has_incoming(&self, id: NodeId) -> bool {
        self.rows.iter().any(|e| e.dst == id)
    }

    /// All rows.
    pub fn rows(&self) -> &[EdgeRecord] {
        &self.rows
    }

    /// Table capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears all rows.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u8, base: u64, elems: u64, size: u8) -> NodeRecord {
        NodeRecord {
            id: NodeId(id),
            base,
            bound: base + elems * size as u64,
            data_size: size,
            trigger: false,
        }
    }

    #[test]
    fn node_table_scan_finds_containing() {
        let mut t = NodeTable::new(4);
        assert!(t.insert(rec(0, 0x1000, 16, 4)));
        assert!(t.insert(rec(1, 0x2000, 8, 8)));
        assert_eq!(t.containing(0x1004).unwrap().id, NodeId(0));
        assert_eq!(t.containing(0x203f).unwrap().id, NodeId(1));
        assert!(t.containing(0x3000).is_none());
    }

    #[test]
    fn node_table_capacity_enforced() {
        let mut t = NodeTable::new(2);
        assert!(t.insert(rec(0, 0, 1, 4)));
        assert!(t.insert(rec(1, 0x100, 1, 4)));
        assert!(!t.insert(rec(2, 0x200, 1, 4)), "third insert rejected");
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn reregistering_a_node_replaces_it() {
        let mut t = NodeTable::new(2);
        t.insert(rec(0, 0x1000, 4, 4));
        t.insert(rec(0, 0x9000, 4, 4));
        assert_eq!(t.rows().len(), 1);
        assert!(t.containing(0x9000).is_some());
    }

    #[test]
    fn trigger_marking() {
        let mut t = NodeTable::new(4);
        t.insert(rec(0, 0, 4, 4));
        t.insert(rec(1, 0x100, 4, 4));
        assert!(t.set_trigger(NodeId(1), TriggerSpec::default()));
        assert_eq!(t.trigger().unwrap().0.id, NodeId(1));
        assert!(t.set_trigger(NodeId(0), TriggerSpec::default()));
        assert_eq!(t.trigger().unwrap().0.id, NodeId(0), "trigger moves");
        assert!(!t.set_trigger(NodeId(7), TriggerSpec::default()));
    }

    #[test]
    fn edge_table_outgoing_and_leaf() {
        let mut e = EdgeTable::new(4);
        assert!(e.insert(EdgeRecord {
            src: NodeId(0),
            dst: NodeId(1),
            kind: EdgeKind::SingleValued
        }));
        assert!(e.insert(EdgeRecord {
            src: NodeId(1),
            dst: NodeId(2),
            kind: EdgeKind::Ranged
        }));
        assert_eq!(e.from(NodeId(0)).count(), 1);
        assert!(!e.is_leaf(NodeId(1)));
        assert!(e.is_leaf(NodeId(2)));
        assert!(e.has_incoming(NodeId(2)));
        assert!(!e.has_incoming(NodeId(0)));
    }

    #[test]
    fn edge_table_rejects_duplicates_and_overflow() {
        let mut e = EdgeTable::new(1);
        let r = EdgeRecord {
            src: NodeId(0),
            dst: NodeId(1),
            kind: EdgeKind::SingleValued,
        };
        assert!(e.insert(r));
        assert!(!e.insert(r), "duplicate");
        assert!(!e.insert(EdgeRecord {
            src: NodeId(1),
            dst: NodeId(2),
            kind: EdgeKind::Ranged
        }));
    }

    #[test]
    fn clear_resets_tables() {
        let mut t = NodeTable::new(2);
        t.insert(rec(0, 0, 4, 4));
        t.set_trigger(NodeId(0), TriggerSpec::default());
        t.clear();
        assert!(t.rows().is_empty());
        assert!(t.trigger().is_none());
    }
}
