//! The PreFetch status Handling Register (PFHR) file (paper §IV-B, Fig. 9d).
//!
//! PFHRs are to the prefetcher what MSHRs are to a non-blocking cache, with
//! one extra job: they remember *where in a prefetch sequence* an
//! outstanding request sits, so a fill can be continued through the DIG.
//! Each entry tracks one outstanding cache line: the DIG node it belongs to,
//! the *trigger address* of the sequence that spawned it (used to drop
//! sequences the core caught up with), and a bitmap of element offsets
//! within the line that still need processing on fill.
//!
//! The file is fixed-size; when it is full new prefetches are dropped — the
//! structural hazard the Fig. 12 design-space exploration measures.

use crate::dig::NodeId;

/// Continuation state for a streaming ranged indirection: the fill of the
/// entry carrying this issues the next window of lines, so long ranges
/// (power-law hub vertices) stream through a bounded register file instead
/// of needing one register per line up front. Ranged indirection
/// "summarises a streaming access through a portion of memory" (§IV-C2);
/// this is the hardware state that keeps the stream going (+56 bits/entry
/// over the paper's field list; see `storage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeCont {
    /// First line of the not-yet-issued remainder of the range.
    pub next_line: u64,
    /// Address of the last element of the range.
    pub last_elem: u64,
}

/// One PFHR row (Fig. 9d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfhrEntry {
    /// DIG node of the outstanding prefetch.
    pub node: NodeId,
    /// Trigger-structure element address the sequence started from.
    pub trigger_addr: u64,
    /// Line-aligned outstanding prefetch address (the CAM key).
    pub line_addr: u64,
    /// Bitmap of pending element slots within the line (slot = byte offset /
    /// element size).
    pub offset_bitmap: u64,
    /// Element size of the node, cached to decode the bitmap.
    pub elem_size: u8,
    /// Pending range continuation, carried by the last entry of a window.
    pub cont: Option<RangeCont>,
}

impl PfhrEntry {
    /// Iterates over pending element addresses encoded in the bitmap.
    pub fn pending_elems(&self) -> impl Iterator<Item = u64> + '_ {
        let line = self.line_addr;
        let sz = self.elem_size as u64;
        (0..64u32)
            .filter(move |b| self.offset_bitmap & (1 << b) != 0)
            .map(move |b| line + b as u64 * sz)
    }
}

/// The PFHR file: a small fully-associative array with CAM lookup by line
/// address.
#[derive(Debug, Clone)]
pub struct PfhrFile {
    entries: Vec<Option<PfhrEntry>>,
    /// Prefetches dropped because the file was full (structural hazard).
    pub structural_drops: u64,
}

impl PfhrFile {
    /// Creates a file with `entries` registers (paper default: 16).
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "PFHR file needs at least one register");
        PfhrFile {
            entries: vec![None; entries],
            structural_drops: 0,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of occupied registers.
    pub fn occupied(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Allocates (or merges into) an entry tracking `elem_addr` of `node`.
    /// Returns `true` on success, `false` when the file is full (the caller
    /// should still issue or drop the prefetch per its policy; the paper
    /// drops it).
    pub fn allocate(
        &mut self,
        node: NodeId,
        trigger_addr: u64,
        elem_addr: u64,
        elem_size: u8,
    ) -> bool {
        self.allocate_with(node, trigger_addr, elem_addr, elem_size, None)
    }

    /// [`PfhrFile::allocate`] carrying a range continuation. A `Some`
    /// continuation overwrites any on a merged entry.
    pub fn allocate_with(
        &mut self,
        node: NodeId,
        trigger_addr: u64,
        elem_addr: u64,
        elem_size: u8,
        cont: Option<RangeCont>,
    ) -> bool {
        let line = elem_addr & !(prodigy_sim::LINE_BYTES - 1);
        let slot = ((elem_addr - line) / elem_size as u64).min(63);
        // Merge with an existing entry for the same line + node.
        if let Some(e) = self
            .entries
            .iter_mut()
            .flatten()
            .find(|e| e.line_addr == line && e.node == node)
        {
            e.offset_bitmap |= 1 << slot;
            if cont.is_some() {
                e.cont = cont;
            }
            return true;
        }
        match self.entries.iter_mut().find(|e| e.is_none()) {
            Some(free) => {
                *free = Some(PfhrEntry {
                    node,
                    trigger_addr,
                    line_addr: line,
                    offset_bitmap: 1 << slot,
                    elem_size,
                    cont,
                });
                true
            }
            None => {
                self.structural_drops += 1;
                false
            }
        }
    }

    /// CAM lookup by line address; removes and returns the entry (a fill
    /// retires the register).
    pub fn take(&mut self, line_addr: u64) -> Option<PfhrEntry> {
        self.entries
            .iter_mut()
            .find(|e| e.map(|e| e.line_addr == line_addr).unwrap_or(false))
            .and_then(|e| e.take())
    }

    /// Drops every entry belonging to the sequence with `trigger_addr`
    /// (§IV-C1's selective sequence drop). Returns how many were freed.
    pub fn drop_sequence(&mut self, trigger_addr: u64) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if e.map(|e| e.trigger_addr == trigger_addr).unwrap_or(false) {
                *e = None;
                n += 1;
            }
        }
        n
    }

    /// Clears all registers.
    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    /// Whether a live entry tracks `line_addr`.
    pub fn contains_line(&self, line_addr: u64) -> bool {
        self.entries
            .iter()
            .flatten()
            .any(|e| e.line_addr == line_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_take_roundtrip() {
        let mut f = PfhrFile::new(4);
        assert!(f.allocate(NodeId(1), 0x100, 0x2008, 4));
        assert_eq!(f.occupied(), 1);
        let e = f.take(0x2000).expect("CAM hit");
        assert_eq!(e.node, NodeId(1));
        assert_eq!(e.pending_elems().collect::<Vec<_>>(), vec![0x2008]);
        assert_eq!(f.occupied(), 0);
        assert!(f.take(0x2000).is_none(), "entry retired");
    }

    #[test]
    fn same_line_merges_bitmap() {
        let mut f = PfhrFile::new(2);
        assert!(f.allocate(NodeId(0), 0x1, 0x3000, 4));
        assert!(f.allocate(NodeId(0), 0x1, 0x300c, 4));
        assert_eq!(f.occupied(), 1, "merged into one register");
        let e = f.take(0x3000).unwrap();
        assert_eq!(e.pending_elems().collect::<Vec<_>>(), vec![0x3000, 0x300c]);
    }

    #[test]
    fn full_file_drops_and_counts() {
        let mut f = PfhrFile::new(2);
        assert!(f.allocate(NodeId(0), 0, 0x0, 4));
        assert!(f.allocate(NodeId(0), 0, 0x40, 4));
        assert!(!f.allocate(NodeId(0), 0, 0x80, 4));
        assert_eq!(f.structural_drops, 1);
    }

    #[test]
    fn drop_sequence_frees_only_matching_trigger() {
        let mut f = PfhrFile::new(4);
        f.allocate(NodeId(0), 0xAAA, 0x0, 4);
        f.allocate(NodeId(1), 0xAAA, 0x40, 4);
        f.allocate(NodeId(2), 0xBBB, 0x80, 4);
        assert_eq!(f.drop_sequence(0xAAA), 2);
        assert_eq!(f.occupied(), 1);
        assert!(f.contains_line(0x80));
    }

    #[test]
    fn eight_byte_elements_use_coarser_slots() {
        let mut f = PfhrFile::new(2);
        f.allocate(NodeId(0), 0, 0x1038, 8); // slot 7 of an 8B-element line
        let e = f.take(0x1000).unwrap();
        assert_eq!(e.pending_elems().collect::<Vec<_>>(), vec![0x1038]);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_rejected() {
        PfhrFile::new(0);
    }
}
