//! The Data Indirection Graph (DIG): the compact software-side description
//! of data-structure layout and traversal pattern (paper §III-A, Fig. 5).
//!
//! A DIG is a small weighted directed graph, *unrelated* to any input graph
//! data set: nodes describe arrays, edges describe the two supported
//! data-dependent indirection patterns, and one node carries a trigger
//! self-edge describing how prefetch sequences are initialised.

/// Identifier of a DIG node (index into the node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u8);

/// Encodes a DIG edge `src -> dst` as a telemetry source tag: the high byte
/// holds `src + 1` (so it is never zero and edge tags cannot collide with
/// bare node tags), the low byte holds `dst`. Decoded for display by
/// `prodigy_sim::source_tag_label`.
pub fn edge_tag(src: NodeId, dst: NodeId) -> u16 {
    ((src.0 as u16 + 1) << 8) | dst.0 as u16
}

/// Encodes a bare DIG node as a telemetry source tag (high byte zero).
pub fn node_tag(node: NodeId) -> u16 {
    node.0 as u16
}

/// The two data-dependent indirection patterns Prodigy supports (Fig. 5c/d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `w0`: `dst[src[i]]` — one value indexes the destination (e.g. edge
    /// list → visited list in BFS).
    SingleValued,
    /// `w1`: `dst[src[i] .. src[i+1]]` — two consecutive values bound a
    /// streaming range in the destination (e.g. offset list → edge list).
    Ranged,
}

/// Traversal direction of the trigger structure (§IV-C1: ascending or
/// descending order of memory addresses; symgs' backward sweep descends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TraversalDirection {
    /// Addresses increase as the algorithm advances.
    #[default]
    Ascending,
    /// Addresses decrease (e.g. a backward Gauss-Seidel sweep).
    Descending,
}

/// Parameters carried by a trigger (`w2`) edge: how many prefetch sequences
/// to initialise per trigger event and from what look-ahead distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriggerSpec {
    /// Look-ahead distance in trigger-structure elements (`j` in Fig. 10).
    /// `None` selects the paper's depth heuristic at programming time.
    pub lookahead: Option<u32>,
    /// Number of sequences initialised per trigger event (`k − j + 1`).
    pub sequences: u32,
    /// Traversal direction.
    pub direction: TraversalDirection,
}

impl Default for TriggerSpec {
    fn default() -> Self {
        TriggerSpec {
            lookahead: None,
            sequences: 4,
            direction: TraversalDirection::Ascending,
        }
    }
}

/// A DIG node: the memory layout of one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigNode {
    /// Base virtual address.
    pub base: u64,
    /// Number of elements.
    pub elems: u64,
    /// Element size in bytes.
    pub elem_size: u8,
}

impl DigNode {
    /// One-past-the-end address.
    pub fn bound(&self) -> u64 {
        self.base + self.elems * self.elem_size as u64
    }

    /// Whether `addr` falls inside the array.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.bound()).contains(&addr)
    }
}

/// A DIG traversal edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigEdge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Indirection pattern.
    pub kind: EdgeKind,
}

/// Errors from DIG construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigError {
    /// An edge references a node id that was never registered.
    UnknownNode(NodeId),
    /// No trigger edge was registered.
    MissingTrigger,
    /// The trigger node is unreachable-from/defined on a node with an
    /// incoming traversal edge (triggers must be roots, §III-B2).
    TriggerNotRoot(NodeId),
    /// Element size is not one of 1, 2, 4, 8.
    BadElemSize(u8),
}

impl std::fmt::Display for DigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DigError::UnknownNode(n) => write!(f, "edge references unregistered node {}", n.0),
            DigError::MissingTrigger => write!(f, "no trigger edge registered"),
            DigError::TriggerNotRoot(n) => {
                write!(f, "trigger node {} has an incoming traversal edge", n.0)
            }
            DigError::BadElemSize(s) => write!(f, "unsupported element size {s}"),
        }
    }
}

impl std::error::Error for DigError {}

/// The software-side DIG: what the compiler pass or programmer annotations
/// build, and what gets written into the prefetcher's tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dig {
    nodes: Vec<DigNode>,
    edges: Vec<DigEdge>,
    trigger: Option<(NodeId, TriggerSpec)>,
}

impl Dig {
    /// Creates an empty DIG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node (an array at `base` with `elems` elements of
    /// `elem_size` bytes) and returns its id.
    ///
    /// # Panics
    /// Panics if more than 255 nodes are registered.
    pub fn node(&mut self, base: u64, elems: u64, elem_size: u8) -> NodeId {
        assert!(self.nodes.len() < 256, "too many DIG nodes");
        self.nodes.push(DigNode {
            base,
            elems,
            elem_size,
        });
        NodeId((self.nodes.len() - 1) as u8)
    }

    /// Registers a traversal edge.
    pub fn edge(&mut self, src: NodeId, dst: NodeId, kind: EdgeKind) {
        self.edges.push(DigEdge { src, dst, kind });
    }

    /// Registers the trigger edge (a self-edge on `node`).
    pub fn trigger(&mut self, node: NodeId, spec: TriggerSpec) {
        self.trigger = Some((node, spec));
    }

    /// All nodes in registration order.
    pub fn nodes(&self) -> &[DigNode] {
        &self.nodes
    }

    /// All traversal edges.
    pub fn edges(&self) -> &[DigEdge] {
        &self.edges
    }

    /// The trigger node and its spec, if registered.
    pub fn trigger_spec(&self) -> Option<(NodeId, TriggerSpec)> {
        self.trigger
    }

    /// Looks up a node by id.
    pub fn get(&self, id: NodeId) -> Option<&DigNode> {
        self.nodes.get(id.0 as usize)
    }

    /// Validates structural invariants (§III): edges reference registered
    /// nodes, a trigger exists, the trigger node has no incoming traversal
    /// edge, and element sizes are power-of-two machine sizes.
    pub fn validate(&self) -> Result<(), DigError> {
        for n in &self.nodes {
            if !matches!(n.elem_size, 1 | 2 | 4 | 8) {
                return Err(DigError::BadElemSize(n.elem_size));
            }
        }
        for e in &self.edges {
            for id in [e.src, e.dst] {
                if self.get(id).is_none() {
                    return Err(DigError::UnknownNode(id));
                }
            }
        }
        let (t, _) = self.trigger.ok_or(DigError::MissingTrigger)?;
        if self.get(t).is_none() {
            return Err(DigError::UnknownNode(t));
        }
        if self.edges.iter().any(|e| e.dst == t) {
            return Err(DigError::TriggerNotRoot(t));
        }
        Ok(())
    }

    /// Length (in nodes) of the longest simple path starting at the trigger
    /// node — the "prefetch depth" that drives the look-ahead heuristic
    /// (§IV-C1). Returns 0 when no trigger is set.
    pub fn depth_from_trigger(&self) -> u32 {
        let Some((t, _)) = self.trigger else { return 0 };
        let mut visited = vec![false; self.nodes.len()];
        self.longest_path(t, &mut visited)
    }

    fn longest_path(&self, from: NodeId, visited: &mut Vec<bool>) -> u32 {
        if visited[from.0 as usize] {
            return 0;
        }
        visited[from.0 as usize] = true;
        let mut best = 0;
        for e in self.edges.iter().filter(|e| e.src == from) {
            best = best.max(self.longest_path(e.dst, visited));
        }
        visited[from.0 as usize] = false;
        1 + best
    }

    /// The paper's look-ahead heuristic (§IV-C1): the distance decreases as
    /// the prefetch depth grows — a deep chain takes long to traverse, so a
    /// short look-ahead already hides the latency, while a shallow chain
    /// must start much further ahead.
    ///
    /// The absolute values are calibrated to this reproduction's scaled
    /// machine (swept per depth in `examples/design_space.rs`); the paper
    /// reports the same monotone shape with distance 1 at depth ≥ 4 on its
    /// full-size system, and notes ±4× around the ideal barely matters.
    pub fn heuristic_lookahead(depth: u32) -> u32 {
        match depth {
            0..=2 => 64,
            3 => 16,
            4 => 8,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bfs_dig() -> Dig {
        let mut d = Dig::new();
        let wq = d.node(0x1000, 8, 4);
        let off = d.node(0x2000, 9, 4);
        let edg = d.node(0x3000, 16, 4);
        let vis = d.node(0x4000, 8, 4);
        d.edge(wq, off, EdgeKind::SingleValued);
        d.edge(off, edg, EdgeKind::Ranged);
        d.edge(edg, vis, EdgeKind::SingleValued);
        d.trigger(wq, TriggerSpec::default());
        d
    }

    #[test]
    fn bfs_dig_validates_with_depth_four() {
        let d = bfs_dig();
        d.validate().expect("valid");
        assert_eq!(d.depth_from_trigger(), 4);
    }

    #[test]
    fn node_bounds_and_contains() {
        let n = DigNode {
            base: 0x100,
            elems: 4,
            elem_size: 8,
        };
        assert_eq!(n.bound(), 0x120);
        assert!(n.contains(0x100) && n.contains(0x11f));
        assert!(!n.contains(0x120) && !n.contains(0xff));
    }

    #[test]
    fn missing_trigger_rejected() {
        let mut d = Dig::new();
        d.node(0, 1, 4);
        assert_eq!(d.validate(), Err(DigError::MissingTrigger));
    }

    #[test]
    fn trigger_with_incoming_edge_rejected() {
        let mut d = bfs_dig();
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        d.edge(nodes[3], nodes[0], EdgeKind::SingleValued);
        assert_eq!(d.validate(), Err(DigError::TriggerNotRoot(nodes[0])));
    }

    #[test]
    fn bad_elem_size_rejected() {
        let mut d = Dig::new();
        let n = d.node(0, 1, 3);
        d.trigger(n, TriggerSpec::default());
        assert_eq!(d.validate(), Err(DigError::BadElemSize(3)));
    }

    #[test]
    fn unknown_node_in_edge_rejected() {
        let mut d = Dig::new();
        let n = d.node(0, 1, 4);
        d.edge(n, NodeId(9), EdgeKind::Ranged);
        d.trigger(n, TriggerSpec::default());
        assert_eq!(d.validate(), Err(DigError::UnknownNode(NodeId(9))));
    }

    #[test]
    fn depth_handles_cycles_between_non_trigger_nodes() {
        // pr's CSC+CSR DIG can share destination nodes; ensure cycle safety.
        let mut d = Dig::new();
        let a = d.node(0x0, 4, 4);
        let b = d.node(0x100, 4, 4);
        let c = d.node(0x200, 4, 4);
        d.edge(a, b, EdgeKind::SingleValued);
        d.edge(b, c, EdgeKind::SingleValued);
        d.edge(c, b, EdgeKind::SingleValued); // cycle b ↔ c
        d.trigger(a, TriggerSpec::default());
        // a → b → c → b would revisit b, so the longest *simple* path is
        // a → b → c: three nodes.
        assert_eq!(d.depth_from_trigger(), 3);
    }

    #[test]
    fn lookahead_heuristic_decreases_with_depth() {
        let seq: Vec<u32> = (1..=6).map(Dig::heuristic_lookahead).collect();
        assert!(
            seq.windows(2).all(|w| w[0] >= w[1]),
            "distance must not grow with depth: {seq:?}"
        );
        assert!(Dig::heuristic_lookahead(2) >= 4 * Dig::heuristic_lookahead(4));
        assert_eq!(Dig::heuristic_lookahead(11), Dig::heuristic_lookahead(20));
    }
}
