//! OS integration (paper §IV-F): saving and restoring the prefetcher's
//! *architectural* state across context switches.
//!
//! When the thread using Prodigy is descheduled, prefetching pauses but the
//! DIG tables remain; if another Prodigy-using thread is scheduled, the
//! tables must be saved and restored. Only the programmed state (node
//! table, edge table, trigger) is architectural — PFHRs and live-sequence
//! tracking are transient microarchitectural state that is simply dropped,
//! like in-flight MSHRs on a context switch.

use crate::dig::{EdgeKind, TriggerSpec};
use crate::prefetcher::ProdigyPrefetcher;

/// A saved prefetcher context: everything software programmed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProdigyContext {
    nodes: Vec<(u8, u64, u64, u8)>,   // (id, base, bound, elem_size)
    edges: Vec<(u64, u64, EdgeKind)>, // (src base, dst base, kind)
    trigger: Option<(u64, TriggerSpec)>,
}

impl ProdigyPrefetcher {
    /// Captures the programmed DIG state (§IV-F context save).
    pub fn save_context(&self) -> ProdigyContext {
        let nodes = self
            .node_table()
            .rows()
            .iter()
            .map(|r| (r.id.0, r.base, r.bound, r.data_size))
            .collect();
        let by_id = |id| self.node_table().by_id(id).map(|r| r.base).unwrap_or(0);
        let edges = self
            .edge_table()
            .rows()
            .iter()
            .map(|e| (by_id(e.src), by_id(e.dst), e.kind))
            .collect();
        let trigger = self.node_table().trigger().map(|(r, spec)| (r.base, spec));
        ProdigyContext {
            nodes,
            edges,
            trigger,
        }
    }

    /// Restores a saved context (§IV-F context restore). Transient state
    /// (PFHRs, live sequences) starts empty, as after a real context
    /// switch.
    pub fn restore_context(&mut self, ctx: &ProdigyContext) {
        self.reset_tables();
        for &(id, base, bound, elem_size) in &ctx.nodes {
            let elems = (bound - base) / elem_size as u64;
            self.register_node(base, elems, elem_size, id);
        }
        for &(src, dst, kind) in &ctx.edges {
            self.register_trav_edge(src, dst, kind);
        }
        if let Some((addr, spec)) = ctx.trigger {
            self.register_trig_edge(addr, spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dig::{Dig, EdgeKind};

    fn sample() -> ProdigyPrefetcher {
        let mut dig = Dig::new();
        let a = dig.node(0x1000, 64, 4);
        let b = dig.node(0x2000, 65, 4);
        let c = dig.node(0x3000, 256, 8);
        dig.edge(a, b, EdgeKind::SingleValued);
        dig.edge(b, c, EdgeKind::Ranged);
        dig.trigger(a, TriggerSpec::default());
        let mut pf = ProdigyPrefetcher::default();
        pf.program(&dig).unwrap();
        pf
    }

    #[test]
    fn save_restore_roundtrips_programmed_state() {
        let original = sample();
        let ctx = original.save_context();
        let mut other = ProdigyPrefetcher::default();
        other.restore_context(&ctx);
        assert_eq!(original.node_table().rows(), other.node_table().rows());
        assert_eq!(original.edge_table().rows(), other.edge_table().rows());
        assert_eq!(
            original.node_table().trigger().map(|(r, _)| r.base),
            other.node_table().trigger().map(|(r, _)| r.base)
        );
    }

    #[test]
    fn restore_replaces_previous_context() {
        let mut pf = sample();
        let first = pf.save_context();
        // Program a different DIG (another thread's context).
        let mut dig2 = Dig::new();
        let x = dig2.node(0x9000, 16, 4);
        let y = dig2.node(0xa000, 16, 4);
        dig2.edge(x, y, EdgeKind::SingleValued);
        dig2.trigger(x, TriggerSpec::default());
        pf.program(&dig2).unwrap();
        assert_eq!(pf.node_table().rows().len(), 2);
        // Switch back.
        pf.restore_context(&first);
        assert_eq!(pf.node_table().rows().len(), 3);
        assert!(pf.node_table().containing(0x1000).is_some());
        assert!(pf.node_table().containing(0x9000).is_none());
    }

    #[test]
    fn empty_context_restores_to_empty_tables() {
        let mut pf = sample();
        pf.restore_context(&ProdigyContext::default());
        assert!(pf.node_table().rows().is_empty());
        assert!(pf.edge_table().rows().is_empty());
        assert!(pf.node_table().trigger().is_none());
    }
}
