//! Property-based tests of the Prodigy hardware structures.

use prodigy::dig::NodeId;
use prodigy::pfhr::RangeCont;
use prodigy::{Dig, EdgeKind, PfhrFile, ProdigyPrefetcher, TriggerSpec};
use proptest::prelude::*;

fn arb_edge_kind() -> impl Strategy<Value = EdgeKind> {
    prop_oneof![Just(EdgeKind::SingleValued), Just(EdgeKind::Ranged)]
}

proptest! {
    /// Arbitrary DIGs (valid or not) never panic on validate(), and
    /// programming a prefetcher with a *valid* one always succeeds and
    /// registers exactly the DIG's nodes/edges (up to table capacity).
    #[test]
    fn arbitrary_digs_are_safe(
        nodes in prop::collection::vec((0u64..1u64 << 30, 1u64..4096, prop::sample::select(vec![1u8, 2, 4, 8])), 1..12),
        edges in prop::collection::vec((0u8..12, 0u8..12), 0..12),
        kinds in prop::collection::vec(arb_edge_kind(), 12),
        trig in 0u8..12,
    ) {
        let mut dig = Dig::new();
        let ids: Vec<_> = nodes
            .iter()
            .scan(0u64, |cursor, &(gap, elems, size)| {
                // Lay arrays out disjointly.
                let base = 0x1000_0000 + *cursor;
                *cursor += gap % 0x10_0000 + elems * size as u64 + 64;
                Some(dig.node(base, elems, size))
            })
            .collect();
        for (i, &(s, d)) in edges.iter().enumerate() {
            if (s as usize) < ids.len() && (d as usize) < ids.len() {
                dig.edge(ids[s as usize], ids[d as usize], kinds[i]);
            }
        }
        if (trig as usize) < ids.len() {
            dig.trigger(ids[trig as usize], TriggerSpec::default());
        }
        let _depth = dig.depth_from_trigger(); // must not hang on cycles
        if dig.validate().is_ok() {
            let mut pf = ProdigyPrefetcher::default();
            pf.program(&dig).expect("validated DIG must program");
            prop_assert_eq!(pf.node_table().rows().len(), dig.nodes().len().min(16));
        }
    }

    /// The PFHR file's occupancy equals allocations minus takes/drops, and
    /// a sequence drop removes exactly the entries with that trigger.
    #[test]
    fn pfhr_sequence_drop_is_exact(
        allocs in prop::collection::vec((0u64..4, 0u64..1u64 << 12), 1..32)
    ) {
        let mut f = PfhrFile::new(64);
        for &(trig, elem) in &allocs {
            f.allocate(NodeId(0), trig, elem * 4, 4);
        }
        let before = f.occupied();
        let dropped = f.drop_sequence(2);
        prop_assert_eq!(f.occupied(), before - dropped);
        prop_assert_eq!(f.drop_sequence(2), 0, "second drop finds nothing");
    }

    /// Continuations survive merges: the last Some(cont) wins.
    #[test]
    fn pfhr_continuation_overwrite(next in 1u64..1000, last in 1u64..1000) {
        let mut f = PfhrFile::new(4);
        f.allocate_with(NodeId(1), 7, 0x1000, 4, None);
        f.allocate_with(
            NodeId(1),
            7,
            0x1004,
            4,
            Some(RangeCont { next_line: next * 64, last_elem: last * 64 }),
        );
        let e = f.take(0x1000).expect("entry present");
        let c = e.cont.expect("continuation kept");
        prop_assert_eq!(c.next_line, next * 64);
        prop_assert_eq!(c.last_elem, last * 64);
    }

    /// Storage arithmetic: total = DIG tables + PFHRs, monotone in every
    /// capacity knob.
    #[test]
    fn storage_monotone(n in 1usize..64, e in 1usize..64, p in 1usize..64) {
        use prodigy::storage::{dig_table_bits, pfhr_bits, total_bits};
        let base = prodigy::ProdigyConfig::default();
        let cfg = prodigy::ProdigyConfig {
            node_capacity: n,
            edge_capacity: e,
            pfhr_entries: p,
            ..base
        };
        prop_assert_eq!(total_bits(&cfg), dig_table_bits(&cfg) + pfhr_bits(&cfg));
        let bigger = prodigy::ProdigyConfig {
            node_capacity: n + 1,
            edge_capacity: e + 1,
            pfhr_entries: p + 1,
            ..base
        };
        prop_assert!(total_bits(&bigger) > total_bits(&cfg));
    }
}
